"""The Turbine rule engine.

An engine rank evaluates the STC-generated Tcl program.  ``rule``
statements register data dependencies on TDs; when all inputs of a rule
are closed, the rule *fires*: LOCAL actions execute in the engine's Tcl
interpreter, WORK/CONTROL actions are shipped through ADLB to workers
or other engines.  Close notifications arrive from the data servers on
the async channel.
"""

from __future__ import annotations

import itertools
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..adlb.client import AdlbClient
from ..adlb.constants import CONTROL, SOP_CKPT_PART, TAG_SERVER
from ..faults import InjectedFault, RankKilled, TaskError, TaskFailure, snippet
from ..mpi import AbortError, DeadlockError
from ..tcl.errors import TclError


@dataclass
class Rule:
    id: int
    action: str
    type: str  # LOCAL | WORK | CONTROL
    target: int
    priority: int
    name: str
    remaining: int = 0


@dataclass
class EngineStats:
    rules_created: int = 0
    rules_fired_local: int = 0
    tasks_released: int = 0
    notifications: int = 0
    control_tasks_run: int = 0


@dataclass
class JournalStats:
    """Rule-table journaling counters, folded as ``engine.journal.*``."""

    entries: int = 0
    flushes: int = 0
    adoptions: int = 0
    adopted_rules: int = 0


class Engine:
    """Dataflow rule bookkeeping + main event loop for one engine rank."""

    def __init__(
        self,
        client: AdlbClient,
        interp,
        tracer: Any | None = None,
        on_error: str = "retry",
        retries_enabled: bool = False,
        faults: Any | None = None,
        journal: bool = False,
    ):
        self.client = client
        self.interp = interp
        self.tracer = tracer
        self.on_error = on_error
        self.retries_enabled = retries_enabled
        self.faults = faults
        self.journal = journal
        # Always-on flight recorder (may be None), shared via the world.
        # The runtime constructs the engine before its client exists
        # and re-points this when it attaches one.
        self.flightrec = (
            client.comm.world.flightrec if client is not None else None
        )
        # Buffered rule-lifecycle journal entries, streamed to the
        # anchor server at dispatch boundaries (always immediately
        # before a fault kill-point, so the journal is exact at death).
        self._jbuf: list[tuple] = []
        self.journal_stats = JournalStats()
        self.failures: list[TaskFailure] = []
        self._seq = itertools.count(1)
        # Provenance unit ids for control tasks run on this engine
        # ("C<rank>.<n>"); counts executions, including retries.
        self._unit_seq = itertools.count(1)
        self.ready: deque[Rule] = deque()
        # td id -> rules blocked on it
        self.blocked: dict[int, list[Rule]] = {}
        # TDs known closed (subscription already answered)
        self.closed: set[int] = set()
        # TDs with an outstanding subscription
        self.subscribed: set[int] = set()
        self.stats = EngineStats()

    # ------------------------------------------------------------------ rules

    def add_rule(
        self,
        inputs: list[int],
        action: str,
        rtype: str = "LOCAL",
        target: int = -1,
        priority: int = 0,
        name: str = "",
    ) -> None:
        if rtype not in ("LOCAL", "WORK", "CONTROL"):
            raise TclError("bad rule type %r" % rtype)
        self.client.incr_work()
        rule = Rule(
            id=next(self._seq),
            action=action,
            type=rtype,
            target=target,
            priority=priority,
            name=name,
        )
        self.stats.rules_created += 1
        if self.flightrec is not None:
            self.flightrec.record(
                self.client.rank, "rule_create", rule.id, len(set(inputs))
            )
        if self.tracer is not None:
            # Lineage: which TDs this rule waits on, and which unit of
            # work registered it (the spawn edge of the run DAG).
            self.tracer.instant(
                self.client.rank,
                "rule",
                "create",
                {
                    "id": rule.id,
                    "type": rtype,
                    "name": name,
                    "inputs": sorted(set(inputs)),
                    "by": self.client.prov_unit,
                },
            )
        pending: list[int] = []
        for td in set(inputs):
            if td in self.closed:
                continue
            if td in self.subscribed:
                self.blocked.setdefault(td, []).append(rule)
                rule.remaining += 1
                pending.append(td)
                continue
            if self.client.subscribe(td):
                self.closed.add(td)
                continue
            self.subscribed.add(td)
            self.blocked.setdefault(td, []).append(rule)
            rule.remaining += 1
            pending.append(td)
        if rule.remaining == 0:
            self.ready.append(rule)
        if self.journal:
            self._jot(
                (
                    "create",
                    {
                        "id": rule.id,
                        "inputs": pending,
                        "action": action,
                        "type": rtype,
                        "target": target,
                        "priority": priority,
                        "name": name,
                    },
                )
            )

    # ---------------------------------------------------------------- journal

    def _jot(self, entry: tuple) -> None:
        """Buffer one journal entry (flushed at dispatch boundaries)."""
        self._jbuf.append(entry)
        self.journal_stats.entries += 1

    def journal_flush(self) -> None:
        """Stream buffered journal entries to the anchor server.

        Called immediately before every fault kill-point so the
        journal is exact at the instant of death (kills only fire at
        ``faults.on_task`` hooks — the fail-stop invariant), and at
        coarse loop boundaries otherwise.
        """
        if not self._jbuf:
            return
        buf = self._jbuf
        self._jbuf = []
        if self.flightrec is not None:
            self.flightrec.record(
                self.client.rank, "journal_flush", len(buf)
            )
        self.client.journal(buf)
        self.journal_stats.flushes += 1

    def checkpoint_rules(self) -> list[dict]:
        """Snapshot the rule table for a checkpoint.

        Blocked rules record only their still-unresolved inputs; on
        restore, ``add_rule`` re-subscribes and anything closed in the
        restored store resolves immediately."""
        by_id: dict[int, tuple[Rule, list[int]]] = {}
        for td, rules in self.blocked.items():
            for rule in rules:
                by_id.setdefault(rule.id, (rule, []))[1].append(td)
        out = []
        for rule, tds in by_id.values():
            out.append(
                {
                    "inputs": tds,
                    "action": rule.action,
                    "type": rule.type,
                    "target": rule.target,
                    "priority": rule.priority,
                    "name": rule.name,
                }
            )
        for rule in self.ready:
            out.append(
                {
                    "inputs": [],
                    "action": rule.action,
                    "type": rule.type,
                    "target": rule.target,
                    "priority": rule.priority,
                    "name": rule.name,
                }
            )
        return out

    def _ckpt_reply(self, gen: int) -> None:
        client = self.client
        master = (
            client.map.master
            if client.map is not None
            else client.layout.master_server
        )
        client.comm.send(
            {
                "op": SOP_CKPT_PART,
                "kind": "engine",
                "gen": gen,
                "rules": self.checkpoint_rules(),
            },
            master,
            TAG_SERVER,
        )

    def on_close(self, td: int) -> None:
        self.stats.notifications += 1
        if self.tracer is not None:
            self.tracer.instant(self.client.rank, "rule", "notify", {"td": td})
        self.closed.add(td)
        self.subscribed.discard(td)
        if self.journal:
            self._jot(("close", td))
        for rule in self.blocked.pop(td, []):
            rule.remaining -= 1
            if rule.remaining == 0:
                self.ready.append(rule)

    def pending_rule_count(self) -> int:
        """Rules registered but not yet fired/released (diagnostics)."""
        blocked = {r.id for rules in self.blocked.values() for r in rules}
        return len(blocked) + len(self.ready)

    def audit_row(self) -> dict:
        """Terminal bookkeeping snapshot for run-invariant auditing.

        Called once, after :meth:`serve` returns on a clean shutdown
        (never on a killed rank).  At quiescence an engine may hold no
        pending rules, no unflushed journal entries, and no unflushed
        refcount deltas — the conservation checks live in
        :mod:`repro.chaos.invariants`.
        """
        return {
            "role": "engine",
            "rank": self.client.rank,
            "pending_rules": self.pending_rule_count(),
            "unflushed_journal": len(self._jbuf),
            "pending_refcounts": len(self.client._pending_refcounts),
            "rules_created": self.stats.rules_created,
            "adoptions": self.journal_stats.adoptions,
            "failures": len(self.failures),
        }

    def drain(self) -> None:
        """Fire every ready rule (firing may enqueue more)."""
        tracer = self.tracer
        faults = self.faults
        while self.ready:
            rule = self.ready.popleft()
            if faults is not None and self.journal:
                # Kill-point ahead: flush so the journal is exact at
                # the instant of death (kills only fire at on_task
                # hooks — the fail-stop invariant).
                self.journal_flush()
            if rule.type == "LOCAL":
                self.stats.rules_fired_local += 1
                if self.flightrec is not None:
                    self.flightrec.record(
                        self.client.rank, "rule_fire", rule.id
                    )
                directive = None
                if faults is not None:
                    directive = faults.on_task(self.client.rank, rule.action)
                    if directive is not None and directive[0] == "kill":
                        raise RankKilled(self.client.rank, directive[1])
                try:
                    if directive is not None:
                        if directive[0] == "raise":
                            raise InjectedFault(directive[1])
                        time.sleep(directive[1])
                    if tracer is None:
                        self.interp.eval(rule.action)
                    else:
                        # Stores and rule creations inside the fire are
                        # attributed to this rule's unit id.
                        self.client.prov_unit = "R%d.%d" % (
                            self.client.rank,
                            rule.id,
                        )
                        t0 = tracer.now()
                        self.interp.eval(rule.action)
                        tracer.complete(
                            self.client.rank,
                            "rule",
                            "fire",
                            t0,
                            payload={"id": rule.id, "name": rule.name},
                        )
                except (AbortError, DeadlockError):
                    # Transport-level failures are rank problems, not
                    # unit failures: never retried, always fatal.
                    raise
                except Exception as e:  # rule failure — engine stays up
                    # LOCAL rules mutate engine-local state, so they
                    # are never retried: continue records, the other
                    # modes surface a TaskError.
                    if self.journal:
                        self._jot(("done", rule.id))
                    self._unit_error("rule", rule.action, e, retryable=False)
                    continue
                if self.journal:
                    self._jot(("done", rule.id))
                # Deferred refcount decrements land before the rule's
                # accounting unit (they can close TDs and fire rules).
                self.client.flush_refcounts()
                self.client.decr_work()  # the rule's accounting unit
            else:
                # A release is a rule fire for kill accounting (so
                # seeded engine kills land at deterministic dataflow
                # boundaries), but poison/fail/slow rules apply where
                # the payload executes, not here.
                if faults is not None:
                    directive = faults.on_task(
                        self.client.rank, rule.action, kill_only=True
                    )
                    if directive is not None and directive[0] == "kill":
                        raise RankKilled(self.client.rank, directive[1])
                # The rule's accounting unit transfers to the task; the
                # executing rank decrements after running it.
                self.stats.tasks_released += 1
                if self.flightrec is not None:
                    self.flightrec.record(
                        self.client.rank, "rule_release", rule.id, rule.type
                    )
                if tracer is not None:
                    tracer.instant(
                        self.client.rank,
                        "rule",
                        "release",
                        {"id": rule.id, "type": rule.type, "name": rule.name},
                    )
                self.client.put(
                    rule.action,
                    type=rule.type,
                    priority=rule.priority,
                    target=rule.target,
                    prov="R%d.%d" % (self.client.rank, rule.id)
                    if tracer is not None
                    else None,
                )
                if self.journal:
                    self._jot(("done", rule.id))

    def journal_heartbeat(self) -> None:
        """Client-poll hook: flush pending entries or an empty beat.

        Installed as ``client.tick`` so it runs while the engine is
        blocked in ``recv_async``; the anchor refreshes the journal's
        last-heard stamp, which is how a silently-dead *idle* engine
        (holding no lease to sweep) is eventually noticed.
        """
        now = time.monotonic()
        last = getattr(self, "_last_beat", 0.0)
        if self._jbuf:
            self.journal_flush()
            self._last_beat = now
        elif now - last >= 0.2:
            self.client.journal([])
            self._last_beat = now

    def _adopt(self, dead: int, rules: list[dict], repair: int) -> None:
        """Adopt a dead engine's journaled rule table.

        Each ``add_rule`` re-subscribes (re-pointing the TD close
        subscriptions at this rank) and re-increments the termination
        counter; ``repair`` then cancels the units the dead engine
        held (its pending rules, plus its program/restore guard and a
        completed-but-unaccounted control task, if any).  The incrs
        land first, so the counter never touches zero mid-adoption —
        the dead engine's stale units keep it positive until the
        repair decrement restores the truth.
        """
        self.journal_stats.adoptions += 1
        self.journal_stats.adopted_rules += len(rules)
        if self.flightrec is not None:
            self.flightrec.record(
                self.client.rank, "adopt", dead, len(rules), repair
            )
        if self.tracer is not None:
            self.tracer.instant(
                self.client.rank,
                "engine",
                "adopt",
                {"dead": dead, "rules": len(rules), "repair": repair},
            )
        for r in rules:
            self.add_rule(
                list(r["inputs"]),
                r["action"],
                rtype=r["type"],
                target=r["target"],
                priority=r["priority"],
                name=r["name"],
            )
        if repair:
            self.client.decr_work(amount=repair)
        # The adopted rules are journaled as our own creates, so a
        # chained death of this engine is recoverable too.
        self.journal_flush()
        self.drain()
        self.client.flush_refcounts()

    def _unit_error(
        self, kind: str, payload: str, e: BaseException, retryable: bool
    ) -> bool:
        """Exception-safe accounting for a failed unit of engine work.

        Returns True when the unit was handed back to the server for
        retry; otherwise the unit is accounted here (recorded under
        ``continue``, raised as :class:`TaskError` otherwise)."""
        error = "%s: %s" % (type(e).__name__, e)
        tb = "".join(traceback.format_exception(type(e), e, e.__traceback__))
        if retryable and self.on_error == "retry" and self.retries_enabled:
            # The retry re-executes the unit's refcount decrements;
            # flushing this attempt's would double-apply them.
            self.client.discard_pending_refcounts()
            self.client.task_fail(kind, error, tb)
            return True
        self.client.flush_refcounts()
        failure = TaskFailure(
            rank=self.client.rank,
            kind=kind,
            payload=snippet(payload),
            attempts=1,
            error=error,
            traceback=tb,
        )
        if self.on_error == "continue":
            self.failures.append(failure)
            # Poisoned: dataflow blocked on this unit's outputs will
            # never resolve; the master drains the run at quiescence.
            self.client.decr_work(poison=True)
            return False
        self.client.decr_work()
        raise TaskError(failure) from e

    # ------------------------------------------------------------------ loop

    def serve(
        self,
        initial_script: str | None = None,
        restore: list[dict] | None = None,
    ) -> EngineStats:
        """Run the engine event loop until shutdown.

        ``initial_script`` is the program entry point (only the first
        engine rank receives one); other engines only execute CONTROL
        tasks shipped to them.  ``restore`` is this engine's rule table
        from a checkpoint: the rules are re-registered (each
        ``add_rule`` increments the termination counter itself) while
        the engine holds the one guard unit the restored counter
        reserved for it, released once re-registration is done.
        """
        tracer = self.tracer
        rank = self.client.rank
        if self.journal and self.faults is not None:
            # Heartbeat: lets the anchor detect a silently-dead idle
            # engine (no lease to sweep) by journal staleness.
            self.client.tick = self.journal_heartbeat
        self.client.park_async((CONTROL,))
        if restore is not None:
            # The restored counter reserved one guard unit for this
            # engine; journal it so an adopter repairs it if we die
            # before releasing it.
            if self.journal:
                self._jot(("guard", 1))
            for r in restore:
                self.add_rule(
                    list(r["inputs"]),
                    r["action"],
                    rtype=r["type"],
                    target=r["target"],
                    priority=r["priority"],
                    name=r["name"],
                )
            self.drain()
            self.client.flush_refcounts()
            self.client.decr_work()  # the restore guard
            if self.journal:
                self._jot(("guard", 0))
        if initial_script is not None:
            self.client.incr_work()
            if self.journal:
                self._jot(("guard", 1))
            try:
                if tracer is None:
                    self.interp.eval(initial_script)
                else:
                    self.client.prov_unit = "P%d" % rank
                    t0 = tracer.now()
                    self.interp.eval(initial_script)
                    tracer.complete(
                        rank,
                        "engine",
                        "program",
                        t0,
                        payload={"unit": "P%d" % rank, "ok": True},
                    )
            except (AbortError, DeadlockError):
                raise
            except Exception as e:  # program failure
                if tracer is not None:
                    tracer.complete(
                        rank,
                        "engine",
                        "program",
                        t0,
                        payload={
                            "unit": "P%d" % rank,
                            "ok": False,
                            "error": type(e).__name__,
                        },
                    )
                # The initial program cannot be retried (its partial
                # effects are live); continue records and drains
                # whatever dataflow it did set up.
                self._unit_error("program", initial_script, e, retryable=False)
                if self.journal:
                    self._jot(("guard", 0))  # _unit_error accounted it
                self.drain()
            else:
                self.drain()
                self.client.flush_refcounts()
                self.client.decr_work()
                if self.journal:
                    self._jot(("guard", 0))
        while True:
            self.drain()
            if self.journal:
                # Coarse boundary: everything since the last kill-point
                # lands before the engine blocks, so the buffer is
                # empty when the next message's kill-check runs.
                self.journal_flush()
            # Time blocked here with no ready rules is a dataflow stall:
            # the engine is waiting on close notifications or control work.
            if tracer is None:
                msg = self.client.recv_async()
            else:
                t0 = tracer.now()
                msg = self.client.recv_async()
                tracer.complete(
                    rank, "engine", "stall", t0, payload={"kind": msg[0]}
                )
            kind = msg[0]
            if kind == "notify":
                self.on_close(msg[1])
            elif kind == "ctask":
                self.stats.control_tasks_run += 1
                if self.flightrec is not None:
                    self.flightrec.record(rank, "ctask", len(msg[2]))
                directive = None
                if self.faults is not None:
                    directive = self.faults.on_task(rank, msg[2])
                    if directive is not None and directive[0] == "kill":
                        raise RankKilled(rank, directive[1])
                unit = None
                if tracer is not None:
                    unit = "C%d.%d" % (rank, next(self._unit_seq))
                    self.client.prov_unit = unit
                    t0 = tracer.now()
                try:
                    if directive is not None:
                        if directive[0] == "raise":
                            raise InjectedFault(directive[1])
                        time.sleep(directive[1])
                    self.interp.eval(msg[2])
                    if tracer is not None:
                        tracer.complete(
                            rank,
                            "engine",
                            "ctask",
                            t0,
                            payload={"unit": unit, "ok": True},
                        )
                except (AbortError, DeadlockError):
                    raise
                except Exception as e:  # control-task failure
                    if tracer is not None:
                        # Failed attempts keep their span so grant
                        # instants stay aligned 1:1 with unit spans.
                        tracer.complete(
                            rank,
                            "engine",
                            "ctask",
                            t0,
                            payload={
                                "unit": unit,
                                "ok": False,
                                "error": type(e).__name__,
                            },
                        )
                    # Leased like worker tasks, so retry hands the unit
                    # back to the server; either way the engine re-parks
                    # and keeps serving its registered rules.
                    self._unit_error("ctask", msg[2], e, retryable=True)
                    self.drain()
                    if self.journal:
                        self.journal_flush()
                    self.client.park_async((CONTROL,))
                    continue
                if self.journal:
                    # The ctask's effects (rule creates) are journaled;
                    # flag it done so the anchor will not requeue the
                    # lease if we die in the drain below — requeueing
                    # would re-create every rule.  The flag must land
                    # before the park's lease pop clears it.
                    self._jot(("ctask_done",))
                    self.journal_flush()
                self.drain()
                if self.journal:
                    self.journal_flush()
                self.client.park_async((CONTROL,))  # also flushes refcounts
                self.client.decr_work()
            elif kind == "ckpt":
                self._ckpt_reply(msg[1])
            elif kind == "adopt":
                self._adopt(msg[1], msg[2], msg[3])
            elif kind == "shutdown":
                break
            else:
                raise RuntimeError("engine: unexpected async message %r" % (msg,))
        if tracer is not None:
            from .worker import fold_cache_stats

            tracer.metrics.fold_struct("engine", self.stats, rank=rank)
            if self.journal:
                tracer.metrics.fold_struct(
                    "engine.journal", self.journal_stats, rank=rank
                )
            fold_cache_stats(tracer, self.client, self.interp, rank)
        return self.stats
