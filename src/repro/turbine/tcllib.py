'''The Turbine runtime library, written in Tcl.

Real Turbine ships a set of ``.tcl`` library files that the generated
program loads; the C core provides the primitive commands (rule, store,
retrieve, ...) and the library builds Swift's builtins on top.  This is
our equivalent: the primitive commands are registered from Python by
:mod:`repro.turbine.builtins`, and this prelude defines the derived
procs that STC-generated code calls.
'''

TURBINE_TCL = r'''
namespace eval turbine {}

# ---- dereferencing -------------------------------------------------------
# copy_td: once src is closed, copy its value into dst.
proc turbine::copy_td { dst src } {
    turbine::rule [ list $src ] \
        [ list turbine::copy_td_body $dst $src ] LOCAL
}
proc turbine::copy_td_body { dst src } {
    turbine::copy_value $dst $src
}

# deref_store: r holds a *reference* (a TD id).  Once r is closed, wait
# for the referenced TD, then copy its value into dst.
proc turbine::deref_store { dst r } {
    turbine::rule [ list $r ] \
        [ list turbine::deref_store_body $dst $r ] LOCAL
}
proc turbine::deref_store_body { dst r } {
    set m [ turbine::retrieve $r ]
    turbine::copy_td $dst $m
}

# ---- arithmetic builtins (engine-local leaf ops) ---------------------------
proc turbine::binop_integer { oper o a b } {
    turbine::rule [ list $a $b ] \
        [ list turbine::binop_integer_body $oper $o $a $b ] LOCAL
}
proc turbine::binop_integer_body { oper o a b } {
    set x [ turbine::retrieve $a ]
    set y [ turbine::retrieve $b ]
    turbine::store_integer $o [ expr "\$x $oper \$y" ]
}
proc turbine::binop_float { oper o a b } {
    turbine::rule [ list $a $b ] \
        [ list turbine::binop_float_body $oper $o $a $b ] LOCAL
}
proc turbine::binop_float_body { oper o a b } {
    set x [ turbine::retrieve $a ]
    set y [ turbine::retrieve $b ]
    turbine::store_float $o [ expr "double(\$x) $oper double(\$y)" ]
}
proc turbine::binop_compare { oper o a b } {
    turbine::rule [ list $a $b ] \
        [ list turbine::binop_compare_body $oper $o $a $b ] LOCAL
}
proc turbine::binop_compare_body { oper o a b } {
    set x [ turbine::retrieve $a ]
    set y [ turbine::retrieve $b ]
    turbine::store_boolean $o [ expr "{$x} $oper {$y}" ]
}
proc turbine::binop_logic { oper o a b } {
    turbine::rule [ list $a $b ] \
        [ list turbine::binop_logic_body $oper $o $a $b ] LOCAL
}
proc turbine::binop_logic_body { oper o a b } {
    set x [ turbine::retrieve $a ]
    set y [ turbine::retrieve $b ]
    turbine::store_boolean $o [ expr "\$x $oper \$y" ]
}
proc turbine::unop { kind o a } {
    turbine::rule [ list $a ] [ list turbine::unop_body $kind $o $a ] LOCAL
}
proc turbine::unop_body { kind o a } {
    set x [ turbine::retrieve $a ]
    switch $kind {
        neg_integer { turbine::store_integer $o [ expr {- $x} ] }
        neg_float   { turbine::store_float   $o [ expr {- double($x)} ] }
        not         { turbine::store_boolean $o [ expr {! $x} ] }
        int2float   { turbine::store_float   $o [ expr {double($x)} ] }
        float2int   { turbine::store_integer $o [ expr {int($x)} ] }
        default     { error "unop: unknown kind $kind" }
    }
}

# string concatenation of N closed inputs
proc turbine::strcat_rule { o args } {
    turbine::rule $args [ concat turbine::strcat_body $o $args ] LOCAL
}
proc turbine::strcat_body { o args } {
    set s ""
    foreach td $args { append s [ turbine::retrieve $td ] }
    turbine::store_string $o $s
}

# ---- output builtins --------------------------------------------------------
proc turbine::printf_rule { fmt args } {
    if { [ llength $args ] == 0 } {
        turbine::log_output [ format $fmt ]
        return
    }
    turbine::rule $args [ concat turbine::printf_body [ list $fmt ] $args ] LOCAL
}
proc turbine::printf_body { fmt args } {
    set vals [ list ]
    foreach td $args { lappend vals [ turbine::retrieve $td ] }
    turbine::log_output [ format $fmt {*}$vals ]
}
proc turbine::trace_rule { args } {
    if { [ llength $args ] == 0 } { turbine::log_output "trace:" ; return }
    turbine::rule $args [ concat turbine::trace_body $args ] LOCAL
}
proc turbine::trace_body { args } {
    set vals [ list ]
    foreach td $args { lappend vals [ turbine::retrieve $td ] }
    turbine::log_output "trace: [ join $vals , ]"
}
proc turbine::assert_rule { cond msg } {
    turbine::rule [ list $cond $msg ] \
        [ list turbine::assert_body $cond $msg ] LOCAL
}
proc turbine::assert_body { cond msg } {
    if { ! [ turbine::retrieve $cond ] } {
        error "Swift assertion failed: [ turbine::retrieve $msg ]"
    }
}

# ---- container helpers -------------------------------------------------------
# size(a): store the number of members once the container closes.
proc turbine::container_size_rule { o c } {
    turbine::rule [ list $c ] \
        [ list turbine::container_size_body $o $c ] LOCAL
}
proc turbine::container_size_body { o c } {
    turbine::store_integer $o [ llength [ turbine::enumerate $c ] ]
}

# reduce(a): once the container closes, wait on all member TDs, then fold.
proc turbine::container_reduce_rule { kind o c } {
    turbine::rule [ list $c ] \
        [ list turbine::container_reduce_members $kind $o $c ] LOCAL
}
proc turbine::container_reduce_members { kind o c } {
    set members [ list ]
    foreach sub [ turbine::enumerate $c ] {
        lappend members [ turbine::container_lookup $c $sub ]
    }
    if { [ llength $members ] == 0 } {
        turbine::container_reduce_store $kind $o
        return
    }
    turbine::rule $members \
        [ concat turbine::container_reduce_store $kind $o $members ] LOCAL
}
proc turbine::container_reduce_store { kind o args } {
    set vals [ list ]
    foreach td $args { lappend vals [ turbine::retrieve $td ] }
    switch $kind {
        sum_integer {
            set acc 0
            foreach v $vals { incr acc $v }
            turbine::store_integer $o $acc
        }
        sum_float {
            set acc 0.0
            foreach v $vals { set acc [ expr {$acc + $v} ] }
            turbine::store_float $o $acc
        }
        max_integer {
            set acc [ lindex $vals 0 ]
            foreach v $vals { if { $v > $acc } { set acc $v } }
            turbine::store_integer $o $acc
        }
        min_integer {
            set acc [ lindex $vals 0 ]
            foreach v $vals { if { $v < $acc } { set acc $v } }
            turbine::store_integer $o $acc
        }
        max_float {
            set acc [ lindex $vals 0 ]
            foreach v $vals { if { $v > $acc } { set acc $v } }
            turbine::store_float $o $acc
        }
        min_float {
            set acc [ lindex $vals 0 ]
            foreach v $vals { if { $v < $acc } { set acc $v } }
            turbine::store_float $o $acc
        }
        default { error "unknown reduction $kind" }
    }
}

# ---- deferred container ops ---------------------------------------------------
# insert_when_ready: the subscript is itself a future; insert once known.
proc turbine::insert_when_ready { c idx member } {
    turbine::rule [ list $idx ] \
        [ list turbine::insert_when_ready_body $c $idx $member ] LOCAL
}
proc turbine::insert_when_ready_body { c idx member } {
    turbine::container_insert $c [ turbine::retrieve $idx ] $member 1
}

# cref_when_ready: container_reference with a future subscript.
proc turbine::cref_when_ready { c idx ref } {
    turbine::rule [ list $idx ] \
        [ list turbine::cref_when_ready_body $c $idx $ref ] LOCAL
}
proc turbine::cref_when_ready_body { c idx ref } {
    turbine::container_reference $c [ turbine::retrieve $idx ] $ref
}

# ---- sprintf ------------------------------------------------------------------
proc turbine::sprintf_rule { o fmt args } {
    if { [ llength $args ] == 0 } {
        turbine::store_string $o [ format $fmt ]
        return
    }
    turbine::rule $args [ concat turbine::sprintf_body $o [ list $fmt ] $args ] LOCAL
}
proc turbine::sprintf_body { o fmt args } {
    set vals [ list ]
    foreach td $args { lappend vals [ turbine::retrieve $td ] }
    turbine::store_string $o [ format $fmt {*}$vals ]
}

# ---- blob builtins (run on workers, where blobutils lives) ----------------------
proc turbine::blob_from_string_rule { o s } {
    turbine::rule [ list $s ] \
        [ list turbine::blob_from_string_body $o $s ] WORK
}
proc turbine::blob_from_string_body { o s } {
    set h [ blobutils::from_string [ turbine::retrieve $s ] ]
    turbine::store_blob $o $h
    blobutils::free $h
}
proc turbine::string_from_blob_rule { o b } {
    turbine::rule [ list $b ] \
        [ list turbine::string_from_blob_body $o $b ] WORK
}
proc turbine::string_from_blob_body { o b } {
    set h [ turbine::retrieve $b ]
    turbine::store_string $o [ blobutils::to_string $h ]
    blobutils::free $h
}
proc turbine::blob_size_rule { o b } {
    turbine::rule [ list $b ] [ list turbine::blob_size_body $o $b ] WORK
}
proc turbine::blob_size_body { o b } {
    set h [ turbine::retrieve $b ]
    turbine::store_integer $o [ blobutils::size $h ]
    blobutils::free $h
}

# ---- string builtins --------------------------------------------------------------
proc turbine::strop_rule { kind o args } {
    turbine::rule $args [ concat turbine::strop_body $kind $o $args ] LOCAL
}
proc turbine::strop_body { kind o args } {
    set vals [ list ]
    foreach td $args { lappend vals [ turbine::retrieve $td ] }
    switch $kind {
        substring {
            lassign $vals s start len
            set end [ expr { $start + $len - 1 } ]
            turbine::store_string $o [ string range $s $start $end ]
        }
        find {
            lassign $vals hay needle
            turbine::store_integer $o [ string first $needle $hay ]
        }
        replace_all {
            lassign $vals s from to
            turbine::store_string $o [ string map [ list $from $to ] $s ]
        }
        toupper { turbine::store_string $o [ string toupper [ lindex $vals 0 ] ] }
        tolower { turbine::store_string $o [ string tolower [ lindex $vals 0 ] ] }
        trim    { turbine::store_string $o [ string trim [ lindex $vals 0 ] ] }
        default { error "unknown string op $kind" }
    }
}

# split(s, sep) -> string[]: fills the output container, consuming the
# single writer slot the call statement holds.
proc turbine::split_rule { c s sep } {
    turbine::rule [ list $s $sep ] \
        [ list turbine::split_body $c $s $sep ] LOCAL
}
proc turbine::split_body { c s sep } {
    set parts [ split [ turbine::retrieve $s ] [ turbine::retrieve $sep ] ]
    set n [ llength $parts ]
    turbine::write_refcount_incr $c $n
    set i 0
    foreach part $parts {
        set m [ turbine::allocate string ]
        turbine::store_string $m $part
        turbine::container_insert $c $i $m 1
        incr i
    }
    turbine::write_refcount_decr $c 1
}

# join(a, sep) -> string: waits for the container, then all members,
# then joins in integer-subscript order.
proc turbine::join_rule { o c sep } {
    turbine::rule [ list $c $sep ] \
        [ list turbine::join_members $o $c $sep ] LOCAL
}
proc turbine::join_members { o c sep } {
    set subs [ lsort -integer [ turbine::enumerate $c ] ]
    set members [ list ]
    foreach sub $subs {
        lappend members [ turbine::container_lookup $c $sub ]
    }
    if { [ llength $members ] == 0 } {
        turbine::store_string $o ""
        return
    }
    turbine::rule $members \
        [ concat turbine::join_store $o $sep $members ] LOCAL
}
proc turbine::join_store { o sep args } {
    set vals [ list ]
    foreach td $args { lappend vals [ turbine::retrieve $td ] }
    turbine::store_string $o [ join $vals [ turbine::retrieve $sep ] ]
}

# ---- program arguments ----------------------------------------------------------
# argv values live in the ::swift_argv dict, installed by the runtime.
proc turbine::argv_rule { kind o name args } {
    set deps [ concat [ list $name ] $args ]
    turbine::rule $deps [ concat turbine::argv_body $kind $o $name $args ] LOCAL
}
proc turbine::argv_body { kind o name args } {
    global swift_argv
    set key [ turbine::retrieve $name ]
    if { [ info exists swift_argv ] && [ dict exists $swift_argv $key ] } {
        set val [ dict get $swift_argv $key ]
    } elseif { [ llength $args ] == 1 } {
        set val [ turbine::retrieve [ lindex $args 0 ] ]
    } else {
        error "missing program argument --$key (and no default given)"
    }
    if { $kind eq "int" } {
        turbine::store_integer $o [ expr { int($val) } ]
    } else {
        turbine::store_string $o $val
    }
}

# ---- conversion builtins -------------------------------------------------------
proc turbine::convert_rule { kind o a } {
    turbine::rule [ list $a ] [ list turbine::convert_body $kind $o $a ] LOCAL
}
proc turbine::convert_body { kind o a } {
    set x [ turbine::retrieve $a ]
    switch $kind {
        toint     { turbine::store_integer $o [ expr {int($x)} ] }
        tofloat   { turbine::store_float $o [ expr {double($x)} ] }
        fromint   { turbine::store_string $o $x }
        fromfloat { turbine::store_string $o $x }
        parseint  { turbine::store_integer $o [ expr {int($x)} ] }
        strlen    { turbine::store_integer $o [ string length $x ] }
        default   { error "unknown conversion $kind" }
    }
}

# math functions on floats
proc turbine::mathfn_rule { fn o a } {
    turbine::rule [ list $a ] [ list turbine::mathfn_body $fn $o $a ] LOCAL
}
proc turbine::mathfn_body { fn o a } {
    set x [ turbine::retrieve $a ]
    turbine::store_float $o [ expr "$fn\(double(\$x))" ]
}
'''
