"""Turbine: the distributed-memory dataflow engine (Wozniak et al.).

Engines evaluate STC-generated Tcl, registering dataflow rules against
Turbine data (TDs) in the ADLB store; workers execute leaf tasks
shipped through ADLB as Tcl code fragments.
"""

from ..faults import (
    DeadlineExceeded,
    FaultPlan,
    TaskError,
    TaskFailure,
)
from .engine import Engine, EngineStats, Rule
from .runtime import (
    LEGACY_OPTIONS,
    Output,
    RankContext,
    RunResult,
    RuntimeConfig,
    run_turbine_program,
)
from .tcllib import TURBINE_TCL
from .worker import Worker, WorkerStats

__all__ = [
    "Engine",
    "EngineStats",
    "Rule",
    "Worker",
    "WorkerStats",
    "RuntimeConfig",
    "LEGACY_OPTIONS",
    "RunResult",
    "RankContext",
    "Output",
    "run_turbine_program",
    "TURBINE_TCL",
    "FaultPlan",
    "TaskError",
    "TaskFailure",
    "DeadlineExceeded",
]
