"""The Turbine worker loop: get a leaf task, run it, repeat."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from ..adlb.client import AdlbClient
from ..adlb.constants import WORK


@dataclass
class WorkerStats:
    tasks_run: int = 0
    busy_time: float = 0.0


class Worker:
    """Executes leaf tasks; per-task spans go to the run's tracer.

    The old ``record_spans`` flag is gone: pass a
    :class:`repro.obs.Tracer` instead and read spans back via
    ``result.trace.spans("task")``.
    """

    def __init__(self, client: AdlbClient, interp, tracer: Any | None = None):
        self.client = client
        self.interp = interp
        self.stats = WorkerStats()
        self.tracer = tracer

    def serve(self) -> WorkerStats:
        tracer = self.tracer
        rank = self.client.rank
        while True:
            got = self.client.get((WORK,))
            if got is None:
                if tracer is not None:
                    tracer.metrics.fold_struct("worker", self.stats, rank=rank)
                    fold_cache_stats(tracer, self.client, self.interp, rank)
                return self.stats
            _, payload = got
            t0 = time.perf_counter()
            self.interp.eval(payload)
            t1 = time.perf_counter()
            self.stats.tasks_run += 1
            self.stats.busy_time += t1 - t0
            if tracer is not None:
                tracer.complete(
                    rank, "task", "task", t0, t1, {"bytes": len(payload)}
                )
            # Deferred refcount decrements must land before the task's
            # accounting unit: a batched write-decrement can close TDs
            # and fire rules, which the termination counter must see.
            self.client.flush_refcounts()
            self.client.decr_work()


def fold_cache_stats(tracer: Any, client: AdlbClient, interp, rank: int) -> None:
    """Fold the rank's compile/read-cache counters into run metrics.

    Exposes ``tcl.compile.{hits,misses,expr_hits,expr_misses}`` and
    ``adlb.retrieve_cache.{hits,misses,evictions,...}``.
    """
    cache_stats = getattr(interp, "cache_stats", None)
    if cache_stats is not None:
        tracer.metrics.fold_struct("tcl.compile", cache_stats, rank=rank)
    data_stats = getattr(client, "data_stats", None)
    if data_stats is not None:
        tracer.metrics.fold_struct("adlb.retrieve_cache", data_stats, rank=rank)
