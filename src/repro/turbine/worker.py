"""The Turbine worker loop: get a leaf task, run it, repeat."""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any

from ..adlb import constants as C
from ..adlb.client import AdlbClient
from ..adlb.constants import WORK
from ..faults import InjectedFault, RankKilled, TaskError, TaskFailure, snippet
from ..mpi import AbortError, DeadlockError


@dataclass
class WorkerStats:
    tasks_run: int = 0
    busy_time: float = 0.0


@dataclass
class WatchdogStats:
    """Folded into run metrics as ``worker.watchdog.*``."""

    fired: int = 0  # deadlines that expired with the task still running
    abandoned: int = 0  # tasks whose results were discarded after expiry
    recycled: int = 0  # interpreter recycles after an abandoned task


class _Watchdog:
    """One daemon thread arming a per-task deadline.

    ``arm`` starts the clock for a task, ``disarm`` stops it; both are
    mutually exclusive with the expiry firing (the condition lock is
    held across the fire callback), so a task either finishes normally
    or is abandoned — never both.  The fire callback runs on the
    watchdog thread and must only do thread-safe work (the mailbox
    sends of the thread-backed comm are queue-based and safe).
    """

    def __init__(self, timeout: float, on_expire: Any):
        self.timeout = timeout
        self.on_expire = on_expire
        self._cond = threading.Condition()
        self._gen = 0
        self._deadline: float | None = None
        self._fired_gen = -1
        self._stop = False
        self._thread = threading.Thread(
            target=self._run, name="task-watchdog", daemon=True
        )
        self._thread.start()

    def arm(self) -> int:
        with self._cond:
            self._gen += 1
            self._deadline = time.monotonic() + self.timeout
            self._cond.notify()
            return self._gen

    def disarm(self, gen: int) -> bool:
        """Stop the clock; True if this arming already fired (the task
        was abandoned while it ran — its unit is no longer ours)."""
        with self._cond:
            self._deadline = None
            return self._fired_gen == gen

    def fired(self, gen: int) -> bool:
        with self._cond:
            return self._fired_gen == gen

    def stop(self) -> None:
        with self._cond:
            self._stop = True
            self._cond.notify()

    def _run(self) -> None:
        while True:
            with self._cond:
                if self._stop:
                    return
                if self._deadline is None:
                    self._cond.wait()
                    continue
                now = time.monotonic()
                if now < self._deadline:
                    self._cond.wait(self._deadline - now)
                    continue
                # Expired: fire under the lock so a concurrent disarm
                # (task just finished) cannot race the abandonment.
                self._fired_gen = self._gen
                self._deadline = None
                self.on_expire()


class Worker:
    """Executes leaf tasks; per-task spans go to the run's tracer.

    The old ``record_spans`` flag is gone: pass a
    :class:`repro.obs.Tracer` instead and read spans back via
    ``result.trace.spans("task")``.

    ``on_error`` selects what happens when a task raises: ``retry``
    (report the leased unit back via OP_TASK_FAIL so the server can
    requeue it), ``continue`` (record a :class:`TaskFailure`, repair
    the accounting, keep serving), or ``fail_fast`` (repair the
    accounting, then raise a :class:`TaskError`).  ``faults`` is an
    optional :class:`repro.faults.FaultState` consulted before each
    task; when ``None`` — the default — the check is one pointer test.
    """

    def __init__(
        self,
        client: AdlbClient,
        interp,
        tracer: Any | None = None,
        on_error: str = "retry",
        retries_enabled: bool = False,
        faults: Any | None = None,
        task_timeout: float | None = None,
    ):
        self.client = client
        self.interp = interp
        self.stats = WorkerStats()
        self.tracer = tracer
        self.on_error = on_error
        self.retries_enabled = retries_enabled
        self.faults = faults
        self.failures: list[TaskFailure] = []
        self.task_timeout = task_timeout
        self.watchdog_stats = WatchdogStats()
        self._watchdog = (
            _Watchdog(task_timeout, self._watchdog_fire)
            if task_timeout is not None
            else None
        )
        # Always-on flight recorder (may be None), shared via the world.
        self.flightrec = client.comm.world.flightrec
        # Provenance unit ids for tasks run on this worker
        # ("T<rank>.<n>"); counts executions, including retries.
        self._unit_seq = 0

    def _watchdog_fire(self) -> None:
        """Expiry callback (watchdog thread): hand the overdue unit
        back as failed so the server can retry it elsewhere.

        Sent as a raw oneway — never through the reliable-RPC path,
        whose per-client sequence numbers belong to the main thread.
        The main loop notices the abandonment at ``disarm`` and skips
        the unit's accounting; the interpreter is recycled there.
        """
        self.watchdog_stats.fired += 1
        self.client.comm.send(
            {
                "op": C.OP_TASK_FAIL,
                "kind": "task",
                "error": "TaskTimeout: task exceeded %.3gs watchdog"
                % self.task_timeout,
            },
            self.client.my_server,
            C.TAG_ONEWAY,
        )

    def serve(self) -> WorkerStats:
        try:
            return self._serve()
        finally:
            if self._watchdog is not None:
                self._watchdog.stop()

    def audit_row(self) -> dict:
        """Terminal bookkeeping snapshot for run-invariant auditing.

        Called once, after :meth:`serve` returns on a clean shutdown
        (never on a killed rank).  A quiescent worker holds no
        unflushed refcount deltas: ``flush_refcounts`` runs at every
        task boundary and failed attempts discard theirs.
        """
        return {
            "role": "worker",
            "rank": self.client.rank,
            "pending_refcounts": len(self.client._pending_refcounts),
            "tasks_run": self.stats.tasks_run,
            "abandoned": self.watchdog_stats.abandoned,
            "failures": len(self.failures),
        }

    def _serve(self) -> WorkerStats:
        tracer = self.tracer
        faults = self.faults
        flightrec = self.flightrec
        rank = self.client.rank
        wd = self._watchdog
        while True:
            got = self.client.get((WORK,))
            if got is None:
                if tracer is not None:
                    tracer.metrics.fold_struct("worker", self.stats, rank=rank)
                    if wd is not None:
                        tracer.metrics.fold_struct(
                            "worker.watchdog", self.watchdog_stats, rank=rank
                        )
                    fold_cache_stats(tracer, self.client, self.interp, rank)
                return self.stats
            _, payload = got
            unit = None
            if tracer is not None:
                self._unit_seq += 1
                unit = "T%d.%d" % (rank, self._unit_seq)
                self.client.prov_unit = unit
            directive = None
            if faults is not None:
                directive = faults.on_task(rank, payload)
                if directive is not None and directive[0] == "kill":
                    # Not a task failure: the whole rank dies holding
                    # its lease; recovery is the server's job.
                    raise RankKilled(rank, directive[1])
            if flightrec is not None:
                flightrec.record(rank, "task_start", len(payload))
            t0 = time.perf_counter()
            gen = wd.arm() if wd is not None else 0
            try:
                if directive is not None:
                    if directive[0] == "raise":
                        raise InjectedFault(directive[1])
                    time.sleep(directive[1])
                if wd is None or not wd.fired(gen):
                    # An expiry during the injected delay already handed
                    # the unit back; running the payload now would
                    # double-apply its stores.
                    self.interp.eval(payload)
            except (AbortError, DeadlockError):
                # Transport-level failures are rank problems, not task
                # failures: never retried or recorded, always fatal.
                raise
            except Exception as e:  # task failure — rank stays up
                if wd is not None and wd.disarm(gen):
                    self._abandon(rank, payload, tracer, unit, t0)
                    continue
                if flightrec is not None:
                    flightrec.record(
                        rank, "task_fail", len(payload), type(e).__name__
                    )
                if tracer is not None:
                    # Failed attempts keep their span so grant instants
                    # stay aligned 1:1 with unit spans on this rank.
                    tracer.complete(
                        rank,
                        "task",
                        "task",
                        t0,
                        payload={
                            "bytes": len(payload),
                            "unit": unit,
                            "ok": False,
                            "error": type(e).__name__,
                        },
                    )
                self._task_error(rank, payload, e)
                continue
            if wd is not None and wd.disarm(gen):
                self._abandon(rank, payload, tracer, unit, t0)
                continue
            t1 = time.perf_counter()
            self.stats.tasks_run += 1
            self.stats.busy_time += t1 - t0
            if flightrec is not None:
                flightrec.record(rank, "task_done", len(payload))
            if tracer is not None:
                tracer.complete(
                    rank,
                    "task",
                    "task",
                    t0,
                    t1,
                    {"bytes": len(payload), "unit": unit, "ok": True},
                )
            # Deferred refcount decrements must land before the task's
            # accounting unit: a batched write-decrement can close TDs
            # and fire rules, which the termination counter must see.
            self.client.flush_refcounts()
            self.client.decr_work()

    def _abandon(
        self, rank: int, payload: Any, tracer: Any, unit: str | None, t0: float
    ) -> None:
        """The watchdog expired while this task ran: its unit was
        already failed back to the server (and is being retried
        elsewhere), so this attempt's results are discarded — no
        counter decrement, no refcount flush — and the embedded
        interpreters are recycled in case the runaway task wedged them.
        """
        self.watchdog_stats.abandoned += 1
        if self.flightrec is not None:
            # The lone cross-thread ring write on this rank: the
            # watchdog's failure oneway raced us, benign (see flightrec).
            self.flightrec.record(rank, "task_abandon", len(payload))
        self.client.discard_pending_refcounts()
        self._recycle_interp()
        if tracer is not None:
            tracer.complete(
                rank,
                "task",
                "task",
                t0,
                payload={
                    "bytes": len(payload),
                    "unit": unit,
                    "ok": False,
                    "error": "TaskTimeout",
                },
            )

    def _recycle_interp(self) -> None:
        """Reset per-interpreter state a runaway task may have wedged:
        the persistent embedded Python/R sessions (``python_persist``
        globals survive tasks by design — a hung task's partial state
        must not leak into retries) and the compiled-Tcl caches."""
        self.watchdog_stats.recycled += 1
        interp = self.interp
        for attr in ("_embedded_python", "_embedded_r"):
            state = getattr(interp, attr, None)
            if state is not None:
                state["embedded"].reset()
        for attr in ("_code_cache", "_vm_code_cache"):
            cache = getattr(interp, attr, None)
            if cache is not None:
                cache.clear()

    def _task_error(self, rank: int, payload: Any, e: BaseException) -> None:
        """Exception-safe task accounting: every failed task either
        hands its unit back to the server (retry) or decrements the
        termination counter itself (continue / fail_fast) — never
        leaks it, so runs finish or abort deterministically."""
        error = "%s: %s" % (type(e).__name__, e)
        tb = "".join(traceback.format_exception(type(e), e, e.__traceback__))
        if self.on_error == "retry" and self.retries_enabled:
            # The retry re-executes the task's refcount decrements;
            # flushing this attempt's would double-apply them.
            self.client.discard_pending_refcounts()
            self.client.task_fail("task", error, tb)
            return
        # The unit completes (as a failure): land the decrements it
        # already performed, then account for it.
        self.client.flush_refcounts()
        failure = TaskFailure(
            rank=rank,
            kind="task",
            payload=snippet(payload),
            attempts=1,
            error=error,
            traceback=tb,
        )
        if self.on_error == "continue":
            self.failures.append(failure)
            # Poisoned: dataflow blocked on this task's outputs will
            # never resolve; the master drains the run at quiescence.
            self.client.decr_work(poison=True)
            return
        self.client.decr_work()
        raise TaskError(failure) from e


def fold_cache_stats(tracer: Any, client: AdlbClient, interp, rank: int) -> None:
    """Fold the rank's compile/read-cache counters into run metrics.

    Exposes ``tcl.compile.{hits,misses,expr_hits,expr_misses}``,
    ``tcl.vm.{frames,cache_hits,cache_misses,...}`` (when the bytecode
    VM ran anything), and ``adlb.retrieve_cache.{hits,misses,...}``.
    """
    cache_stats = getattr(interp, "cache_stats", None)
    if cache_stats is not None:
        tracer.metrics.fold_struct("tcl.compile", cache_stats, rank=rank)
    vm_stats = getattr(interp, "vm_stats", None)
    if vm_stats is not None and vm_stats.frames:
        tracer.metrics.fold_struct("tcl.vm", vm_stats, rank=rank)
    data_stats = getattr(client, "data_stats", None)
    if data_stats is not None:
        tracer.metrics.fold_struct("adlb.retrieve_cache", data_stats, rank=rank)
    rpc_stats = getattr(client, "rpc_stats", None)
    if rpc_stats is not None and rpc_stats.sent:
        tracer.metrics.fold_struct("adlb.rpc", rpc_stats, rank=rank)
