"""The Turbine worker loop: get a leaf task, run it, repeat."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..adlb.client import AdlbClient
from ..adlb.constants import WORK


@dataclass
class WorkerStats:
    tasks_run: int = 0
    busy_time: float = 0.0
    task_spans: list[tuple[float, float]] = field(default_factory=list)


class Worker:
    def __init__(self, client: AdlbClient, interp, record_spans: bool = False):
        self.client = client
        self.interp = interp
        self.stats = WorkerStats()
        self.record_spans = record_spans

    def serve(self) -> WorkerStats:
        import time

        while True:
            got = self.client.get((WORK,))
            if got is None:
                return self.stats
            _, payload = got
            t0 = time.perf_counter()
            self.interp.eval(payload)
            t1 = time.perf_counter()
            self.stats.tasks_run += 1
            self.stats.busy_time += t1 - t0
            if self.record_spans:
                self.stats.task_spans.append((t0, t1))
            self.client.decr_work()
