"""End-to-end: Swift source -> STC -> Turbine -> ADLB -> workers.

Every test compiles a program and runs it on the full thread-backed
runtime, checking program output.
"""

from __future__ import annotations

import pytest

from repro import SwiftRuntime, swift_run
from repro.faults import TaskError
from repro.mpi.launcher import RankFailure


def run_swift(src: str, workers: int = 3, **kw) -> list[str]:
    return sorted(swift_run(src, workers=workers, **kw).stdout_lines)


class TestBasics:
    def test_hello(self):
        assert run_swift('printf("hello");') == ["hello"]

    def test_arithmetic_chain(self):
        out = run_swift("int x = parseint(\"4\"); printf(\"%i\", (x + 1) * (x - 1));")
        assert out == ["15"]

    def test_float_arithmetic(self):
        out = run_swift('float y = 1.5 * 4.0; printf("%s", fromfloat(y));')
        assert out == ["6.0"]

    def test_mixed_promotion(self):
        out = run_swift('float y = 3 + 0.5; printf("%s", fromfloat(y));')
        assert out == ["3.5"]

    def test_string_concat_operator(self):
        out = run_swift('string s = "ab" + "cd"; printf("%s", s);')
        assert out == ["abcd"]

    def test_strcat_and_sprintf(self):
        out = run_swift(
            'printf("%s", strcat("a", fromint(1), "b"));'
            'printf("%s", sprintf("%03i/%s", 7, "x"));'
        )
        assert out == ["007/x", "a1b"]

    def test_trace(self):
        res = swift_run("trace(1, 2.5);", workers=2)
        assert res.stdout_lines == ["trace: 1,2.5"]

    def test_use_before_assign_dataflow(self):
        out = run_swift(
            "int y;\n"
            'printf("y=%i", y);\n'
            "y = 17;\n"
        )
        assert out == ["y=17"]

    def test_boolean_logic(self):
        out = run_swift(
            "boolean b = (1 < 2) && !(3 < 2);\n"
            'if (b) { printf("yes"); } else { printf("no"); }\n'
        )
        assert out == ["yes"]

    def test_conversions(self):
        out = run_swift(
            'printf("%i", toint(9.9));\n'
            'printf("%s", fromfloat(tofloat(4)));\n'
            'printf("%i", parseint("123"));\n'
            'printf("%i", strlen("hello"));\n'
        )
        assert out == ["123", "4.0", "5", "9"]

    def test_math_functions(self):
        out = run_swift(
            'printf("%s", fromfloat(sqrt(25.0)));\n'
            'printf("%s", fromfloat(floor(2.9)));\n'
            'printf("%s", fromfloat(ceil(2.1)));\n'
        )
        assert out == ["2.0", "3.0", "5.0"]

    def test_power_and_modulo(self):
        out = run_swift('printf("%i %i", 2 ** 10, 17 % 5);')
        assert out == ["1024 2"]

    def test_assert_passes(self):
        assert run_swift('assert(1 < 2, "math works"); printf("ok");') == ["ok"]

    def test_assert_failure_aborts(self):
        with pytest.raises(TaskError, match="assertion failed"):
            swift_run('assert(1 > 2, "broken");', workers=2)


class TestFunctions:
    def test_composite_function(self):
        out = run_swift(
            "(int o) sq(int x) { o = x * x; }\n"
            'printf("%i", sq(7));\n'
        )
        assert out == ["49"]

    def test_nested_composite_calls(self):
        out = run_swift(
            "(int o) inc(int x) { o = x + 1; }\n"
            'printf("%i", inc(inc(inc(0))));\n'
        )
        assert out == ["3"]

    def test_function_calling_function(self):
        out = run_swift(
            "(int o) twice(int x) { o = x * 2; }\n"
            "(int o) quad(int x) { o = twice(twice(x)); }\n"
            'printf("%i", quad(3));\n'
        )
        assert out == ["12"]

    def test_multi_output(self):
        out = run_swift(
            "(int lo, int hi) order(int a, int b) {\n"
            "  if (a < b) { lo = a; hi = b; } else { lo = b; hi = a; }\n"
            "}\n"
            "int lo; int hi;\n"
            "lo, hi = order(9, 3);\n"
            'printf("%i-%i", lo, hi);\n'
        )
        assert out == ["3-9"]

    def test_recursive_function(self):
        out = run_swift(
            "(int o) fib(int n) {\n"
            "  if (n < 2) { o = n; } else { o = fib(n - 1) + fib(n - 2); }\n"
            "}\n"
            'printf("%i", fib(10));\n',
            workers=4,
        )
        assert out == ["55"]

    def test_void_like_function_with_side_effect(self):
        out = run_swift(
            "() report(int x) { printf(\"got %i\", x); }\n"
            "report(5);\n"
        )
        assert out == ["got 5"]

    def test_function_with_array_input(self):
        out = run_swift(
            "(int o) total(int a[]) { o = sum_integer(a); }\n"
            "int xs[];\n"
            "xs[0] = 5; xs[1] = 6;\n"
            'printf("%i", total(xs));\n'
        )
        assert out == ["11"]

    def test_function_with_array_output(self):
        out = run_swift(
            "(int a[]) build(int n) {\n"
            "  foreach i in [0:2] { a[i] = n + i; }\n"
            "}\n"
            "int ys[] = build(10);\n"
            'printf("%i", sum_integer(ys));\n'
        )
        assert out == ["33"]


class TestControlFlow:
    def test_foreach_range_step(self):
        out = run_swift('foreach i in [0:10:5] { printf("i=%i", i); }')
        assert out == ["i=0", "i=10", "i=5"]

    def test_foreach_with_future_bounds(self):
        out = run_swift(
            "int n = parseint(\"3\");\n"
            'foreach i in [1:n] { printf("%i", i); }\n'
        )
        assert out == ["1", "2", "3"]

    def test_empty_range(self):
        out = run_swift(
            'foreach i in [5:1] { printf("never"); }\nprintf("done");'
        )
        assert out == ["done"]

    def test_if_on_future_condition(self):
        out = run_swift(
            "int x = parseint(\"10\");\n"
            'if (x > 5) { printf("big"); } else { printf("small"); }\n'
        )
        assert out == ["big"]

    def test_nested_if(self):
        out = run_swift(
            "(string s) classify(int x) {\n"
            "  if (x < 0) { s = \"neg\"; } else {\n"
            "    if (x == 0) { s = \"zero\"; } else { s = \"pos\"; }\n"
            "  }\n"
            "}\n"
            'printf("%s %s %s", classify(0 - 5), classify(0), classify(5));\n'
        )
        assert out == ["neg zero pos"]

    def test_wait_ordering(self):
        res = swift_run(
            "int gate;\n"
            "wait (gate) { printf(\"after\"); }\n"
            "gate = 1;\n",
            workers=2,
        )
        assert res.stdout_lines == ["after"]

    def test_wait_on_multiple(self):
        out = run_swift(
            "int a = parseint(\"1\"); int b = parseint(\"2\");\n"
            "wait (a, b) { printf(\"both\"); }\n"
        )
        assert out == ["both"]

    def test_dataflow_pipeline_fig1(self):
        """The paper's Fig. 1: f/g pipelines per iteration."""
        out = run_swift(
            "(int o) f(int i) { o = i * i; }\n"
            "(int o) g(int t) { o = t % 2; }\n"
            "foreach i in [0:9] {\n"
            "  int t = f(i);\n"
            "  if (g(t) == 0) { printf(\"g(%i) == 0\", t); }\n"
            "}\n",
            workers=4,
        )
        assert out == sorted("g(%d) == 0" % (i * i) for i in range(0, 10, 2))


class TestArrays:
    def test_write_read_roundtrip(self):
        out = run_swift(
            "int a[];\n"
            "a[0] = 10;\n"
            "a[1] = a[0] + 5;\n"
            'printf("%i %i", a[0], a[1]);\n'
        )
        assert out == ["10 15"]

    def test_out_of_order_element_read(self):
        out = run_swift(
            "int a[];\n"
            'printf("%i", a[3]);\n'
            "a[3] = 42;\n"
        )
        assert out == ["42"]

    def test_loop_fill_and_reduce(self):
        out = run_swift(
            "int a[];\n"
            "foreach i in [0:99] { a[i] = i; }\n"
            'printf("%i %i %i %i", size(a), sum_integer(a), '
            "max_integer(a), min_integer(a));\n",
            workers=4,
        )
        assert out == ["100 4950 99 0"]

    def test_float_array_sum(self):
        out = run_swift(
            "float f[];\n"
            "f[0] = 1.5; f[1] = 2.5;\n"
            'printf("%s", fromfloat(sum_float(f)));\n'
        )
        assert out == ["4.0"]

    def test_foreach_over_array_values_and_indices(self):
        out = run_swift(
            "string names[];\n"
            'names[0] = "a"; names[1] = "b";\n'
            'foreach v, i in names { printf("%i=%s", i, v); }\n'
        )
        assert out == ["0=a", "1=b"]

    def test_computed_subscripts(self):
        out = run_swift(
            "int a[];\n"
            "int k = parseint(\"7\");\n"
            "a[k] = 1;\n"
            "a[k + 1] = 2;\n"
            'printf("%i", a[7] + a[8]);\n'
        )
        assert out == ["3"]

    def test_conditional_array_writes(self):
        out = run_swift(
            "int a[];\n"
            "foreach i in [0:9] {\n"
            "  if (i % 2 == 0) { a[i] = i; } else { }\n"
            "}\n"
            'printf("%i %i", size(a), sum_integer(a));\n',
            workers=4,
        )
        assert out == ["5 20"]

    def test_empty_array_closes(self):
        out = run_swift("int a[];\nprintf(\"%i\", size(a));")
        assert out == ["0"]

    def test_nested_loops(self):
        out = run_swift(
            "int grid[];\n"
            "foreach i in [0:3] {\n"
            "  foreach j in [0:3] {\n"
            "    grid[i * 4 + j] = i * j;\n"
            "  }\n"
            "}\n"
            'printf("%i %i", size(grid), sum_integer(grid));\n',
            workers=4,
        )
        assert out == ["16 36"]

    def test_double_write_same_subscript_fails(self):
        with pytest.raises(TaskError, match="twice"):
            swift_run("int a[]; a[0] = 1; a[0] = 2; printf(\"%i\", a[0]);", workers=2)


class TestInterlanguage:
    def test_python_builtin(self):
        out = run_swift('printf("%s", python("z = 2 ** 16", "z"));')
        assert out == ["65536"]

    def test_python_with_swift_data(self):
        out = run_swift(
            "foreach i in [1:3] {\n"
            '  string r = python(strcat("v = ", fromint(i), " * 11"), "v");\n'
            '  printf("%s", r);\n'
            "}\n"
        )
        assert out == ["11", "22", "33"]

    def test_r_builtin(self):
        out = run_swift('printf("%s", r("m <- mean(c(1, 2, 3, 4))", "m"));')
        assert out == ["2.5"]

    def test_python_and_r_cooperate(self):
        out = run_swift(
            'string py = python("x = list(range(1, 6))", "sum(x)");\n'
            'string rr = r(strcat("y <- ", py, " * 2"), "y");\n'
            'printf("%s", rr);\n'
        )
        assert out == ["30"]

    def test_system_builtin(self):
        out = run_swift('printf("[%s]", system("echo shell-out"));')
        assert out == ["[shell-out]"]

    def test_app_function(self):
        out = run_swift(
            'app (string o) shout(string a, string b) { "echo" a b }\n'
            'printf("%s", shout("x", "y"));\n'
        )
        assert out == ["x y"]

    def test_extension_function_with_tcl_snippet(self):
        out = run_swift(
            '(int o) triple(int x) "" "1.0" [\n'
            '  "set <<o>> [ expr { <<x>> * 3 } ]"\n'
            "];\n"
            'printf("%i", triple(14));\n'
        )
        assert out == ["42"]

    def test_python_task_error_propagates(self):
        with pytest.raises(TaskError, match="python task failed"):
            swift_run('string s = python("1/0", ""); trace(s);', workers=2)

    def test_blob_round_trip(self):
        out = run_swift(
            'blob b = blob_from_string("binary payload");\n'
            'printf("%i", blob_size(b));\n'
            'printf("%s", string_from_blob(b));\n'
        )
        assert out == ["15", "binary payload"]


class TestRuntimeConfigurations:
    @pytest.mark.parametrize("servers,engines,workers", [
        (1, 1, 2),
        (2, 1, 3),
        (1, 2, 3),
        (2, 2, 4),
    ])
    def test_layouts_agree(self, servers, engines, workers):
        src = (
            "int a[];\n"
            "foreach i in [0:19] { a[i] = i * 3; }\n"
            'printf("%i", sum_integer(a));\n'
        )
        res = swift_run(src, workers=workers, servers=servers, engines=engines)
        assert res.stdout_lines == ["570"]

    def test_opt_levels_agree(self):
        src = (
            "(int o) f(int x) { o = x + 1; }\n"
            "int a[];\n"
            "foreach i in [0:9] { a[i] = f(i * 2); }\n"
            'printf("%i", sum_integer(a));\n'
        )
        outs = {opt: run_swift(src, opt=opt) for opt in (0, 1, 2)}
        assert outs[0] == outs[1] == outs[2] == ["100"]

    def test_runtime_reuse(self):
        rt = SwiftRuntime(workers=2)
        assert rt.run('printf("one");').stdout_lines == ["one"]
        assert rt.run('printf("two");').stdout_lines == ["two"]

    def test_worker_stats_populated(self):
        res = swift_run(
            'foreach i in [0:9] { string s = python("x=1", "x"); trace(s); }',
            workers=3,
        )
        assert res.tasks_run == 10
        assert len(res.worker_stats) == 3

    def test_steal_disabled_still_completes(self):
        res = swift_run(
            "foreach i in [0:9] { trace(i); }",
            workers=3,
            servers=2,
            steal=False,
        )
        assert len(res.stdout_lines) == 10
