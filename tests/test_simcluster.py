"""The discrete-event cluster model: conservation laws and scaling shapes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcluster import (
    ClusterParams,
    Simulator,
    bimodal,
    constant,
    lognormal,
    simulate,
    uniform,
)


class TestSimulatorCore:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_at_same_time(self):
        sim = Simulator()
        order = []
        for k in range(5):
            sim.schedule(1.0, order.append, k)
        sim.run()
        assert order == list(range(5))

    def test_now_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]

    def test_nested_scheduling(self):
        sim = Simulator()
        hits = []

        def recur(n):
            hits.append(n)
            if n < 4:
                sim.schedule(1.0, recur, n + 1)

        sim.schedule(0.0, recur, 0)
        sim.run()
        assert hits == [0, 1, 2, 3, 4]
        assert sim.now == 4.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        hits = []
        for t in (1.0, 2.0, 3.0):
            sim.at(t, hits.append, t)
        sim.run(until=2.0)
        assert hits == [1.0, 2.0]
        assert sim.pending == 1


class TestWorkloads:
    def test_constant(self):
        d = constant(10, 0.5)
        assert len(d) == 10 and np.all(d == 0.5)

    def test_uniform_bounds(self):
        d = uniform(100, 1.0, 2.0, seed=1)
        assert np.all(d >= 1.0) and np.all(d <= 2.0)

    def test_lognormal_median(self):
        d = lognormal(20_000, median=1.0, sigma=1.0, seed=2)
        assert abs(float(np.median(d)) - 1.0) < 0.05

    def test_bimodal_fractions(self):
        d = bimodal(100, short=0.1, long=10.0, long_fraction=0.2, seed=3)
        assert int(np.sum(d == 10.0)) == 20

    def test_deterministic_seeds(self):
        assert np.array_equal(lognormal(10, 1.0, seed=5), lognormal(10, 1.0, seed=5))


class TestClusterModel:
    def test_all_tasks_complete(self):
        res = simulate(ClusterParams(n_workers=8), constant(100, 1e-4))
        assert res.n_tasks == 100
        assert res.makespan > 0

    def test_perfect_balance_constant_tasks(self):
        res = simulate(ClusterParams(n_workers=8), constant(160, 1e-3))
        assert res.worker_busy_spread < 0.2

    def test_throughput_scales_with_workers(self):
        tasks_per_worker = 8
        rates = []
        for w in (16, 64, 256):
            res = simulate(
                ClusterParams(n_workers=w, n_engines=4, n_servers=max(1, w // 64)),
                constant(w * tasks_per_worker, 1e-3),
            )
            rates.append(res.tasks_per_sec)
        assert rates[1] > 2.5 * rates[0]
        assert rates[2] > 2.5 * rates[1]

    def test_single_server_saturates(self):
        """A lone ADLB server becomes the bottleneck at scale."""
        w = 512
        p1 = ClusterParams(
            n_workers=w, n_servers=1, n_engines=8, server_op_time=5e-6
        )
        p8 = ClusterParams(
            n_workers=w, n_servers=8, n_engines=8, server_op_time=5e-6
        )
        tiny = constant(w * 4, 1e-5)  # fine-grained tasks stress the server
        r1, r8 = simulate(p1, tiny), simulate(p8, tiny)
        assert r8.tasks_per_sec > 1.5 * r1.tasks_per_sec
        assert max(r1.server_utilization) > 0.9

    def test_steal_improves_imbalanced_servers(self):
        # few engines round-robin to servers, but workers attach unevenly;
        # with steal off, makespans stretch
        w = 32
        durations = constant(w * 4, 1e-3)
        on = simulate(
            ClusterParams(n_workers=w, n_servers=2, steal=True), durations
        )
        assert on.steals >= 0  # model runs; balance checked via utilization
        assert on.worker_utilization > 0.5

    def test_heavy_tail_lowers_utilization(self):
        p = ClusterParams(n_workers=16)
        const = simulate(p, constant(64, 1e-3))
        tail = simulate(p, bimodal(64, short=1e-4, long=5e-2, seed=1))
        assert tail.worker_utilization < const.worker_utilization

    def test_messages_accounted(self):
        res = simulate(ClusterParams(n_workers=4), constant(20, 1e-4))
        # each task: PUT + GET + delivery at minimum
        assert res.messages >= 3 * 20

    def test_engine_emit_rate_limits(self):
        """With a slow engine, adding workers stops helping."""
        slow = 1e-3  # 1k tasks/s max from one engine
        r_few = simulate(
            ClusterParams(n_workers=4, engine_emit_time=slow), constant(100, 1e-4)
        )
        r_many = simulate(
            ClusterParams(n_workers=64, engine_emit_time=slow), constant(100, 1e-4)
        )
        assert r_many.tasks_per_sec < 1.5 * r_few.tasks_per_sec


@given(
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=1, max_value=60),
)
@settings(max_examples=30, deadline=None)
def test_property_task_conservation(workers, tasks):
    """Every submitted task completes exactly once, any configuration."""
    res = simulate(
        ClusterParams(n_workers=workers, n_servers=1 + workers % 3),
        constant(tasks, 1e-4),
    )
    assert res.n_tasks == tasks
    assert res.makespan > 0


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_property_makespan_lower_bound(seed):
    """Makespan >= total work / workers (no superlinear magic)."""
    durations = lognormal(64, 1e-3, sigma=1.0, seed=seed)
    p = ClusterParams(n_workers=8)
    res = simulate(p, durations)
    assert res.makespan >= float(np.sum(durations)) / p.n_workers * 0.999
    assert res.makespan >= float(np.max(durations)) * 0.999
