"""Core Tcl interpreter semantics: substitution, procs, scopes, errors."""

from __future__ import annotations

import pytest

from repro.tcl import Interp, TclError


class TestSubstitution:
    def test_variable_substitution(self, tcl):
        tcl.eval("set x hello")
        assert tcl.eval("set y $x-world") == "hello-world"

    def test_braced_variable_name(self, tcl):
        tcl.eval("set x 1")
        assert tcl.eval('set y a${x}b') == "a1b"

    def test_command_substitution(self, tcl):
        assert tcl.eval("set y [string toupper ab][string tolower CD]") == "ABcd"

    def test_braces_suppress_substitution(self, tcl):
        tcl.eval("set x 1")
        assert tcl.eval("set y {$x [cmd]}") == "$x [cmd]"

    def test_quotes_allow_substitution_no_splitting(self, tcl):
        tcl.eval("set x {a b}")
        assert tcl.eval('llength [list "$x"]') == "1"

    def test_bare_word_splitting_of_substituted_value(self, tcl):
        # Tcl does NOT re-split substituted variables into words
        tcl.eval("set x {a b}")
        assert tcl.eval("llength [list $x]") == "1"

    def test_expand_operator(self, tcl):
        tcl.eval("set x {a b c}")
        assert tcl.eval("llength [list {*}$x]") == "3"

    def test_backslash_escapes(self, tcl):
        assert tcl.eval(r'set y "a\tb\nc"') == "a\tb\nc"

    def test_backslash_newline_continuation(self, tcl):
        assert tcl.eval("set y [expr \\\n  {1 + 2}]") == "3"

    def test_hex_escape(self, tcl):
        assert tcl.eval(r'set y "\x41"') == "A"

    def test_unicode_escape(self, tcl):
        assert tcl.eval(r'set y "é"') == "é"

    def test_semicolon_separates_commands(self, tcl):
        assert tcl.eval("set a 1; set b 2; expr {$a + $b}") == "3"

    def test_comment_at_command_start(self, tcl):
        assert tcl.eval("# a comment\nset x 5") == "5"

    def test_dollar_without_name_is_literal(self, tcl):
        assert tcl.eval('set y "cost: 5$"') == "cost: 5$"


class TestVariables:
    def test_set_get(self, tcl):
        tcl.eval("set x 42")
        assert tcl.eval("set x") == "42"

    def test_unset(self, tcl):
        tcl.eval("set x 1; unset x")
        with pytest.raises(TclError):
            tcl.eval("set x")

    def test_unset_nocomplain(self, tcl):
        tcl.eval("unset -nocomplain nosuch")

    def test_incr_default_and_amount(self, tcl):
        tcl.eval("set n 5")
        assert tcl.eval("incr n") == "6"
        assert tcl.eval("incr n 10") == "16"

    def test_incr_creates_variable(self, tcl):
        assert tcl.eval("incr fresh") == "1"

    def test_append(self, tcl):
        tcl.eval("set s ab")
        assert tcl.eval("append s cd ef") == "abcdef"

    def test_info_exists(self, tcl):
        assert tcl.eval("info exists nosuch") == "0"
        tcl.eval("set yes 1")
        assert tcl.eval("info exists yes") == "1"


class TestProcs:
    def test_basic_proc(self, tcl):
        tcl.eval("proc add {a b} { expr {$a + $b} }")
        assert tcl.eval("add 2 3") == "5"

    def test_default_argument(self, tcl):
        tcl.eval("proc f {a {b 10}} { expr {$a * $b} }")
        assert tcl.eval("f 5") == "50"
        assert tcl.eval("f 5 2") == "10"

    def test_varargs(self, tcl):
        tcl.eval("proc count {first args} { llength $args }")
        assert tcl.eval("count a b c d") == "3"

    def test_wrong_arity_raises(self, tcl):
        tcl.eval("proc f {a} { set a }")
        with pytest.raises(TclError, match="wrong # args"):
            tcl.eval("f 1 2")
        with pytest.raises(TclError, match="wrong # args"):
            tcl.eval("f")

    def test_return_value(self, tcl):
        tcl.eval("proc f {} { return early; set never 1 }")
        assert tcl.eval("f") == "early"

    def test_implicit_return_of_last_command(self, tcl):
        tcl.eval("proc f {} { set x 7 }")
        assert tcl.eval("f") == "7"

    def test_local_scope(self, tcl):
        tcl.eval("set x global")
        tcl.eval("proc f {} { set x local; set x }")
        assert tcl.eval("f") == "local"
        assert tcl.eval("set x") == "global"

    def test_global_command(self, tcl):
        tcl.eval("set g 1")
        tcl.eval("proc bump {} { global g; incr g }")
        tcl.eval("bump; bump")
        assert tcl.eval("set g") == "3"

    def test_upvar(self, tcl):
        tcl.eval("proc setit {vn} { upvar $vn v; set v 99 }")
        tcl.eval("setit target")
        assert tcl.eval("set target") == "99"

    def test_uplevel(self, tcl):
        tcl.eval("proc runup {script} { uplevel 1 $script }")
        tcl.eval("proc f {} { runup {set here 5}; set here }")
        assert tcl.eval("f") == "5"

    def test_recursion(self, tcl):
        tcl.eval(
            "proc fact {n} { if {$n <= 1} { return 1 };"
            " expr {$n * [fact [expr {$n - 1}]]} }"
        )
        assert tcl.eval("fact 10") == "3628800"

    def test_rename(self, tcl):
        tcl.eval("proc f {} { return 1 }; rename f g")
        assert tcl.eval("g") == "1"
        with pytest.raises(TclError):
            tcl.eval("f")

    def test_apply(self, tcl):
        assert tcl.eval("apply {{x} {expr {$x * 3}}} 7") == "21"


class TestControlFlow:
    def test_if_elseif_else(self, tcl):
        tcl.eval("proc sign {x} { if {$x > 0} { return pos } elseif {$x < 0} { return neg } else { return zero } }")
        assert tcl.eval("sign 5") == "pos"
        assert tcl.eval("sign -5") == "neg"
        assert tcl.eval("sign 0") == "zero"

    def test_while_with_break_continue(self, tcl):
        out = tcl.eval(
            "set s {}\n"
            "set i 0\n"
            "while {1} {\n"
            "  incr i\n"
            "  if {$i == 3} { continue }\n"
            "  if {$i > 5} { break }\n"
            "  lappend s $i\n"
            "}\n"
            "set s"
        )
        assert out == "1 2 4 5"

    def test_for(self, tcl):
        assert tcl.eval(
            "set s 0; for {set i 1} {$i <= 4} {incr i} { incr s $i }; set s"
        ) == "10"

    def test_foreach_multi_var(self, tcl):
        out = tcl.eval(
            "set s {}; foreach {a b} {1 2 3 4} { lappend s $b$a }; set s"
        )
        assert out == "21 43"

    def test_foreach_parallel_lists(self, tcl):
        out = tcl.eval(
            "set s {}; foreach a {1 2} b {x y} { lappend s $a$b }; set s"
        )
        assert out == "1x 2y"

    def test_switch(self, tcl):
        tcl.eval("proc f {v} { switch $v { a { return A } b { return B } default { return D } } }")
        assert tcl.eval("f a") == "A"
        assert tcl.eval("f q") == "D"

    def test_switch_glob_and_fallthrough(self, tcl):
        tcl.eval(
            'proc f {v} { switch -glob $v { a* - b* { return AB } default { return D } } }'
        )
        assert tcl.eval("f abc") == "AB"
        assert tcl.eval("f bcd") == "AB"
        assert tcl.eval("f xyz") == "D"

    def test_catch_codes(self, tcl):
        assert tcl.eval("catch {set x 1}") == "0"
        assert tcl.eval("catch {error boom} m") == "1"
        assert tcl.eval("set m") == "boom"
        assert tcl.eval("catch {return r}") == "2"

    def test_error_propagates(self, tcl):
        with pytest.raises(TclError, match="kaput"):
            tcl.eval("error kaput")

    def test_eval_command(self, tcl):
        assert tcl.eval("eval {set q 3}") == "3"
        assert tcl.eval("eval set r 4") == "4"

    def test_subst(self, tcl):
        tcl.eval("set x 5")
        assert tcl.eval("subst {val=$x sum=[expr {1 + 1}]}") == "val=5 sum=2"

    def test_infinite_recursion_guard(self, tcl):
        tcl.eval("proc loop {} { loop }")
        with pytest.raises(TclError):
            tcl.eval("loop")


class TestNamespaces:
    def test_namespace_proc(self, tcl):
        tcl.eval("namespace eval math { proc twice {x} { expr {$x * 2} } }")
        assert tcl.eval("math::twice 21") == "42"

    def test_namespace_variable(self, tcl):
        tcl.eval("namespace eval cfg { variable level 3 }")
        assert tcl.eval("set cfg::level") == "3"

    def test_namespace_internal_resolution(self, tcl):
        tcl.eval(
            "namespace eval m { proc a {} { return [b] }; proc b {} { return inner } }"
        )
        assert tcl.eval("m::a") == "inner"

    def test_namespace_tail_qualifiers(self, tcl):
        assert tcl.eval("namespace tail a::b::c") == "c"
        assert tcl.eval("namespace qualifiers a::b::c") == "a::b"

    def test_nested_namespace_eval(self, tcl):
        tcl.eval("namespace eval outer { namespace eval inner { proc f {} { return x } } }")
        assert tcl.eval("outer::inner::f") == "x"


class TestPackages:
    def test_provide_require(self, tcl):
        tcl.eval("package provide mylib 2.0")
        assert tcl.eval("package require mylib") == "2.0"

    def test_ifneeded_lazy_load(self, tcl):
        tcl.eval(
            'package ifneeded lazy 1.1 {proc lazy::f {} { return ok }; package provide lazy 1.1}'
        )
        assert tcl.eval("package require lazy") == "1.1"
        assert tcl.eval("lazy::f") == "ok"

    def test_require_missing_raises(self, tcl):
        with pytest.raises(TclError, match="can't find package"):
            tcl.eval("package require ghost")

    def test_python_registered_loader(self, tcl):
        tcl.package_loaders["ext"] = (
            "3.0",
            lambda it: it.register("ext::hi", lambda i, a: "hello"),
        )
        assert tcl.eval("package require ext") == "3.0"
        assert tcl.eval("ext::hi") == "hello"


class TestObjectRegistry:
    def test_wrap_unwrap(self, tcl):
        handle = tcl.wrap_object({"k": 1}, "obj")
        assert tcl.unwrap(handle) == {"k": 1}

    def test_release(self, tcl):
        handle = tcl.wrap_object(1, "obj")
        tcl.release_object(handle)
        with pytest.raises(TclError):
            tcl.unwrap(handle)

    def test_invalid_handle(self, tcl):
        with pytest.raises(TclError):
            tcl.unwrap("_nope#1")


class TestErrorReporting:
    def test_errorinfo_trace(self, tcl):
        tcl.eval("proc inner {} { error deep }")
        tcl.eval("proc outer {} { inner }")
        try:
            tcl.eval("outer")
        except TclError as e:
            assert "deep" in e.trace()
            assert "inner" in e.trace()
        else:
            pytest.fail("no error raised")

    def test_unknown_command(self, tcl):
        with pytest.raises(TclError, match="invalid command name"):
            tcl.eval("no_such_command_xyz")

    def test_host_exception_becomes_tcl_error(self, tcl):
        def bad(it, args):
            raise ValueError("host problem")

        tcl.register("bad", bad)
        with pytest.raises(TclError, match="host problem"):
            tcl.eval("bad")
