"""Causal dataflow analysis: provenance capture, critical path, and
live monitoring (repro.obs.analyze / repro.obs.monitor)."""

from __future__ import annotations

import json

import pytest

from repro.api import swift_run
from repro.faults import FaultPlan
from repro.obs import Analysis, Trace

DIAMOND = """
import io;
main {
    string a = python("import time; time.sleep(0.02); x = 10", "x");
    string b = python(strcat("import time; time.sleep(0.03); b = 1 + ", a), "b");
    string c = python(strcat("c = 2 + ", a), "c");
    string d = python(strcat("d = ", b, " + ", c), "d");
    printf("d=%s", d);
}
"""


@pytest.fixture(scope="module")
def diamond_result():
    return swift_run(DIAMOND, workers=4, servers=2, engines=2, trace=True)


@pytest.fixture(scope="module")
def diamond_analysis(diamond_result):
    return Analysis.from_trace(diamond_result.trace)


class TestProvenanceCapture:
    def test_units_linked_to_rules(self, diamond_analysis):
        a = diamond_analysis
        tasks = [u for u in a.units.values() if u.kind == "task"]
        assert len(tasks) == 4  # the four python() calls
        for u in tasks:
            assert u.uid is not None and u.uid >= 0
            assert u.rule is not None and u.rule.startswith("R")
            assert u.rule in a.rules
            assert u.t_grant is not None and u.t_grant <= u.start

    def test_rule_lineage(self, diamond_analysis):
        a = diamond_analysis
        # Every rule records its registering unit and waited-on TDs;
        # the diamond rules were all registered by the program unit.
        work_rules = [r for r in a.rules.values() if r.type == "WORK"]
        assert len(work_rules) == 4
        for r in work_rules:
            assert r.by == "P0"
            assert r.t_release is not None
        # b and c both wait on a TD written by task a.
        writers = {
            td: max(ws, key=lambda w: w[0])[1] for td, ws in a.writes.items()
        }
        a_task = next(
            u for u in a.units.values() if u.rule == work_rules[0].id
        )
        assert any(w == a_task.id for w in writers.values())

    def test_writes_attributed_to_units(self, diamond_analysis):
        a = diamond_analysis
        unit_ids = set(a.units)
        attributed = [
            unit
            for ws in a.writes.values()
            for _, unit in ws
            if unit is not None
        ]
        assert attributed
        # Every attributed write names a unit the analyzer knows.
        assert set(attributed) <= unit_ids


class TestCriticalPath:
    def test_hops_tile_makespan(self, diamond_analysis):
        a = diamond_analysis
        assert a.critical_path
        path_total = sum(h.total for h in a.critical_path)
        # Acceptance bound is 10%; the tiling construction is exact.
        assert path_total == pytest.approx(a.makespan, rel=0.10)
        for hop in a.critical_path:
            assert sum(hop.segments.values()) == pytest.approx(hop.total)
            assert all(v >= 0 for v in hop.segments.values())

    def test_path_takes_slow_branch(self, diamond_analysis):
        a = diamond_analysis
        # The 0.03s sleep (branch b) dominates the diamond: the longest
        # compute hop on the path must be ~0.03s, not the 0.002s of c.
        computes = sorted(
            h.segments["compute"] for h in a.critical_path
        )
        assert computes[-1] >= 0.025
        # The path starts at the program unit and is causally chained.
        assert a.critical_path[0].kind == "program"
        assert not a.incomplete
        for prev, cur in zip(a.critical_path, a.critical_path[1:]):
            assert cur.pred == prev.unit

    def test_stall_attribution_and_what_if(self, diamond_analysis):
        a = diamond_analysis
        assert a.serial_compute > 0.05  # both sleeps are serial
        assert a.serial_compute <= a.makespan + 1e-9
        assert sum(a.stalls.values()) == pytest.approx(
            sum(h.total for h in a.critical_path)
        )

    def test_utilization_and_concurrency(self, diamond_analysis):
        a = diamond_analysis
        assert a.busy_by_rank
        assert 0 < a.avg_concurrency
        assert a.peak_concurrency >= 2  # b and c overlap
        assert all(b > 0 for b in a.busy_by_rank.values())

    def test_render_and_exports(self, diamond_analysis, tmp_path):
        text = diamond_analysis.render()
        assert "critical path:" in text
        assert "what-if:" in text
        dot = diamond_analysis.to_dot()
        assert dot.startswith("digraph") and "color=red" in dot
        doc = diamond_analysis.to_json()
        json.dumps(doc)  # must be serializable
        assert doc["critical_path"] and doc["makespan"] > 0


class TestTraceRoundTrip:
    def test_from_chrome_preserves_analysis(self, diamond_result, tmp_path):
        path = tmp_path / "d.trace.json"
        diamond_result.trace.save_chrome(str(path))
        loaded = Trace.from_chrome(str(path))
        a0 = Analysis.from_trace(diamond_result.trace)
        a1 = Analysis.from_trace(loaded)
        assert set(a1.units) == set(a0.units)
        assert [h.unit for h in a1.critical_path] == [
            h.unit for h in a0.critical_path
        ]
        assert a1.makespan == pytest.approx(a0.makespan, rel=1e-6)
        # Streamed export round-trips meta the analyzer cares about.
        assert loaded.meta.get("roles") == diamond_result.trace.meta.get(
            "roles"
        )


class TestRetryLineage:
    def test_retried_attempt_chains_to_original(self):
        plan = FaultPlan(seed=3).fail_task("task:python", times=1)
        r = swift_run(
            'import io; main { string a = python("x = 41 + 1", "x");'
            ' printf("a=%s", a); }',
            workers=2,
            servers=2,
            engines=1,
            trace=True,
            faults=plan,
            on_error="retry",
            max_retries=3,
        )
        assert r.stdout_lines == ["a=42"]
        a = Analysis.from_trace(r.trace)
        # Both attempts executed under the same uid, in order.
        assert len(a.retries) == 1
        chain = a.retries[0]
        assert len(chain) == 2
        first, second = a.units[chain[0]], a.units[chain[1]]
        assert first.uid == second.uid
        assert not first.ok and second.ok
        assert first.attempts == 0 and second.attempts == 1
        # The walk routes through the retry chain: the retried unit's
        # predecessor is the failed attempt, not the input data.
        hops = {h.unit: h for h in a.critical_path}
        assert hops[second.id].pred == first.id


class TestMonitor:
    def test_timeline_present_on_monitor_run(self):
        r = swift_run(
            DIAMOND,
            workers=4,
            servers=2,
            engines=2,
            monitor=True,
            monitor_interval=0.02,
        )
        assert r.stdout_lines == ["d=23"]
        assert r.timeline
        final = r.timeline[-1]
        assert final.tasks >= 4  # the four python() tasks were granted
        assert final.clients == 6  # 4 workers + 2 engines
        assert final.t > 0
        line = final.render()
        assert line.startswith("[monitor]") and "tasks=" in line

    def test_monitor_out_receives_lines(self):
        lines: list[str] = []
        swift_run(
            'import io; main { printf("hi"); }',
            workers=2,
            servers=1,
            engines=1,
            monitor=True,
            monitor_interval=0.01,
            monitor_out=lines.append,
        )
        assert lines and all(line.startswith("[monitor]") for line in lines)

    def test_no_timeline_without_monitor(self):
        r = swift_run('import io; main { printf("hi"); }', workers=2)
        assert r.timeline == []
