"""The Swift language frontend: lexer, parser, semantic checks."""

from __future__ import annotations

import pytest

from repro.core import (
    SwiftNameError,
    SwiftSyntaxError,
    SwiftTypeError,
    analyze,
    parse,
)
from repro.core.lexer import tokenize
from repro.core.swift_ast import (
    Assign,
    BinOp,
    Call,
    Decl,
    Foreach,
    If,
    Literal,
    RangeSpec,
    Subscript,
    VarRef,
    Wait,
)


class TestLexer:
    def test_keywords_vs_identifiers(self):
        toks = tokenize("int xint")
        assert toks[0].kind == "kw"
        assert toks[1].kind == "id"

    def test_numbers(self):
        toks = tokenize("42 3.14 1e3 2.5e-2")
        assert [t.kind for t in toks[:-1]] == ["int", "float", "float", "float"]

    def test_string_escapes(self):
        (tok, _) = tokenize(r'"a\tb\n"')
        assert tok.text == "a\tb\n"

    def test_comments_all_styles(self):
        toks = tokenize("1 // line\n2 # hash\n3 /* block\nmore */ 4")
        assert [t.text for t in toks[:-1]] == ["1", "2", "3", "4"]

    def test_operators(self):
        toks = tokenize("a==b!=c<=d>=e&&f||g**h")
        ops = [t.text for t in toks if t.kind == "op"]
        assert ops == ["==", "!=", "<=", ">=", "&&", "||", "**"]

    def test_unterminated_string(self):
        with pytest.raises(SwiftSyntaxError):
            tokenize('"abc')

    def test_unterminated_block_comment(self):
        with pytest.raises(SwiftSyntaxError):
            tokenize("/* never closed")

    def test_line_numbers(self):
        toks = tokenize("a\nb\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]


class TestParser:
    def test_declaration_with_init(self):
        prog = parse("int x = 5;")
        decl = prog.main.stmts[0]
        assert isinstance(decl, Decl)
        assert decl.name == "x"
        assert isinstance(decl.init, Literal)

    def test_array_declaration(self):
        prog = parse("float a[];")
        assert prog.main.stmts[0].swift_type.is_array

    def test_operator_precedence(self):
        prog = parse("int x = 1 + 2 * 3;")
        init = prog.main.stmts[0].init
        assert isinstance(init, BinOp) and init.op == "+"
        assert isinstance(init.right, BinOp) and init.right.op == "*"

    def test_power_right_assoc(self):
        prog = parse("int x = 2 ** 3 ** 2;")
        init = prog.main.stmts[0].init
        assert init.op == "**"
        assert isinstance(init.right, BinOp) and init.right.op == "**"

    def test_call_and_subscript(self):
        prog = parse("x = f(a[1], 2);")
        stmt = prog.main.stmts[0]
        assert isinstance(stmt, Assign)
        call = stmt.exprs[0]
        assert isinstance(call, Call)
        assert isinstance(call.args[0], Subscript)

    def test_multi_assignment(self):
        prog = parse("a, b = f(1);")
        assert len(prog.main.stmts[0].targets) == 2

    def test_if_else_chain(self):
        prog = parse("if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }")
        stmt = prog.main.stmts[0]
        assert isinstance(stmt, If)
        assert isinstance(stmt.els.stmts[0], If)

    def test_foreach_range(self):
        prog = parse("foreach i in [0:9:2] { }")
        stmt = prog.main.stmts[0]
        assert isinstance(stmt, Foreach)
        assert isinstance(stmt.iterable, RangeSpec)
        assert stmt.iterable.step is not None

    def test_foreach_array_with_index(self):
        prog = parse("foreach v, i in a { }")
        stmt = prog.main.stmts[0]
        assert stmt.var == "v" and stmt.index_var == "i"

    def test_wait(self):
        prog = parse("wait (x, y) { }")
        stmt = prog.main.stmts[0]
        assert isinstance(stmt, Wait)
        assert len(stmt.exprs) == 2

    def test_function_definition(self):
        prog = parse("(int o) f(int a, float b) { o = a; }")
        fn = prog.funcs[0]
        assert fn.name == "f"
        assert [p.name for p in fn.outputs] == ["o"]
        assert [p.name for p in fn.inputs] == ["a", "b"]

    def test_zero_output_function(self):
        prog = parse("() noop(int a) { trace(a); }")
        assert prog.funcs[0].outputs == []

    def test_extension_function_paper_syntax(self):
        prog = parse(
            '(int o) f(int i, int j) "my_package" "1.0" '
            '[ "set <<o>> [ my_package::f <<i>> <<j>> ]" ];'
        )
        ext = prog.ext_funcs[0]
        assert ext.package == "my_package"
        assert "<<o>>" in ext.template

    def test_app_definition(self):
        prog = parse('app (string out) lister(string d) { "ls" d }')
        app = prog.app_funcs[0]
        assert app.name == "lister"
        assert len(app.command) == 2

    def test_main_block(self):
        prog = parse("main { int x = 1; }")
        assert isinstance(prog.main.stmts[0], Decl)

    def test_import_ignored(self):
        prog = parse("import io;\nint x = 1;")
        assert len(prog.main.stmts) == 1

    def test_missing_semicolon(self):
        with pytest.raises(SwiftSyntaxError):
            parse("int x = 5")

    def test_unbalanced_block(self):
        with pytest.raises(SwiftSyntaxError):
            parse("if (a) { x = 1;")

    def test_bad_assignment_target(self):
        with pytest.raises(SwiftSyntaxError):
            parse("1 = x;")


def check(src: str):
    prog = parse(src)
    return analyze(prog)


class TestSemantics:
    def test_valid_program(self):
        check("int x = 5; printf(\"%i\", x);")

    def test_undeclared_variable(self):
        with pytest.raises(SwiftNameError, match="undeclared"):
            check("x = 5;")

    def test_duplicate_declaration(self):
        with pytest.raises(SwiftNameError, match="already declared"):
            check("int x; int x;")

    def test_double_assignment_rejected(self):
        with pytest.raises(SwiftTypeError, match="more than once"):
            check("int x; x = 1; x = 2;")

    def test_type_mismatch_assignment(self):
        with pytest.raises(SwiftTypeError):
            check('int x = "hello";')

    def test_int_to_float_widening_ok(self):
        check("float x = 5;")

    def test_float_to_int_rejected(self):
        with pytest.raises(SwiftTypeError):
            check("int x = 5.0;")

    def test_unknown_function(self):
        with pytest.raises(SwiftNameError, match="unknown function"):
            check("int x = mystery(1);")

    def test_arity_mismatch(self):
        with pytest.raises(SwiftTypeError, match="argument"):
            check("float y = sqrt(1.0, 2.0);")

    def test_argument_type_check(self):
        with pytest.raises(SwiftTypeError):
            check('float y = sqrt("three");')

    def test_string_concat_plus(self):
        check('string s = "a" + "b";')

    def test_string_plus_int_rejected(self):
        with pytest.raises(SwiftTypeError):
            check('string s = "a" + 1;')

    def test_condition_must_be_boolean(self):
        with pytest.raises(SwiftTypeError, match="condition"):
            check('if ("x") { }')

    def test_branch_assignment_consistency(self):
        with pytest.raises(SwiftTypeError, match="only one branch"):
            check("int x; if (true) { x = 1; }")
        with pytest.raises(SwiftTypeError, match="only one branch"):
            check("int x; int y; if (true) { x = 1; } else { y = 2; }")
        check("int x; if (true) { x = 1; } else { x = 2; }")

    def test_array_writes_exempt_from_branch_rule(self):
        check("int a[]; if (true) { a[0] = 1; } else { }")

    def test_subscript_on_scalar(self):
        with pytest.raises(SwiftTypeError, match="non-array"):
            check("int x; int y = x[0];")

    def test_array_index_must_be_int(self):
        with pytest.raises(SwiftTypeError, match="index must be int"):
            check('int a[]; int y = a["k"];')

    def test_foreach_needs_iterable(self):
        with pytest.raises(SwiftTypeError, match="array or range"):
            check("int x; foreach v in x { }")

    def test_range_bounds_must_be_int(self):
        with pytest.raises(SwiftTypeError, match="bounds must be int"):
            check("foreach i in [0:1.5] { }")

    def test_discarded_outputs_rejected(self):
        with pytest.raises(SwiftTypeError, match="discards"):
            check("(int o) f(int x) { o = x; } f(1);")

    def test_multi_output_in_expression_rejected(self):
        with pytest.raises(SwiftTypeError, match="outputs"):
            check(
                "(int a, int b) f(int x) { a = x; b = x; } "
                "int y = f(1) + 1;"
            )

    def test_whole_array_assign_from_non_call(self):
        with pytest.raises(SwiftTypeError, match="whole-array"):
            check("int a[]; int b[]; b = a;")

    def test_loop_variable_scoping(self):
        check("foreach i in [0:3] { printf(\"%i\", i); }")
        with pytest.raises(SwiftNameError):
            check("foreach i in [0:3] { } printf(\"%i\", i);")

    def test_boolean_ops_need_booleans(self):
        with pytest.raises(SwiftTypeError):
            check("boolean b = 1 && 2;")
        check("boolean b = (1 < 2) && true;")

    def test_app_output_restrictions(self):
        with pytest.raises(SwiftTypeError, match="app output"):
            check('app (int o) bad() { "true" }')
        check('app (string o) ok() { "true" }')

    def test_size_needs_array(self):
        with pytest.raises(SwiftTypeError):
            check("int x; int n = size(x);")
        check("int a[]; int n = size(a);")

    def test_duplicate_function_definition(self):
        with pytest.raises(SwiftNameError, match="already defined"):
            check("(int o) f(int x) { o = x; } (int o) f(int y) { o = y; }")
