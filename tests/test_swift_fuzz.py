"""Property-based compiler testing: random programs, all opt levels.

Random integer-expression programs are generated, evaluated by a
Python reference evaluator, then compiled at -O0/-O1/-O2 and executed
on the real runtime; every path must agree.  This exercises constant
folding, value propagation, spawn-time arithmetic, TD materialization,
and the dataflow operator rules against one source of truth.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import swift_run
from repro.core import compile_swift

# --- random expression ASTs over declared int variables ------------------

_VARS = ["v0", "v1", "v2"]
_VALUES = {"v0": 3, "v1": -7, "v2": 12}


def _leaf():
    return st.one_of(
        st.integers(min_value=-20, max_value=20).map(lambda v: ("lit", v)),
        st.sampled_from(_VARS).map(lambda name: ("var", name)),
    )


def _node(children):
    return st.one_of(
        st.tuples(st.sampled_from(["+", "-", "*"]), children, children).map(
            lambda t: ("bin", t[0], t[1], t[2])
        ),
        st.tuples(st.sampled_from(["/", "%"]), children, children).map(
            lambda t: ("bin", t[0], t[1], t[2])
        ),
        children.map(lambda c: ("neg", c)),
    )


exprs = st.recursive(_leaf(), _node, max_leaves=8)


def to_swift(node) -> str:
    kind = node[0]
    if kind == "lit":
        v = node[1]
        return str(v) if v >= 0 else "(0 - %d)" % -v
    if kind == "var":
        return node[1]
    if kind == "neg":
        return "(0 - %s)" % to_swift(node[1])
    _, op, a, b = node
    return "(%s %s %s)" % (to_swift(a), op, to_swift(b))


class Undefined(Exception):
    pass


def evaluate(node) -> int:
    kind = node[0]
    if kind == "lit":
        return node[1]
    if kind == "var":
        return _VALUES[node[1]]
    if kind == "neg":
        return -evaluate(node[1])
    _, op, a, b = node
    x, y = evaluate(a), evaluate(b)
    if op == "+":
        return x + y
    if op == "-":
        return x - y
    if op == "*":
        return x * y
    if y == 0:
        raise Undefined()
    if op == "/":
        return x // y
    return x % y


@given(exprs)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_random_expressions_agree_across_opt_levels(tree):
    try:
        expected = evaluate(tree)
    except Undefined:
        return  # division by zero: skip (compile may reject or runtime may fail)
    if abs(expected) > 10**15:
        return
    src = (
        "int v0 = parseint(\"3\");\n"
        "int v1 = 0 - parseint(\"7\");\n"
        "int v2 = parseint(\"12\");\n"
        "int result = %s;\n"
        'printf("R=%%i", result);\n' % to_swift(tree)
    )
    # compile at every level first (cheap), then run the extremes
    for opt in (0, 1, 2):
        compile_swift(src, opt=opt)
    for opt in (0, 2):
        out = swift_run(src, workers=2, opt=opt)
        assert out.stdout_lines == ["R=%d" % expected], (
            to_swift(tree),
            opt,
        )


@given(
    st.lists(
        st.integers(min_value=-50, max_value=50), min_size=1, max_size=8
    )
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_array_sum_matches_python(values):
    stores = "\n".join(
        "a[%d] = %s;" % (i, v if v >= 0 else "0 - %d" % -v)
        for i, v in enumerate(values)
    )
    src = "int a[];\n%s\nprintf(\"S=%%i\", sum_integer(a));" % stores
    out = swift_run(src, workers=2)
    assert out.stdout_lines == ["S=%d" % sum(values)]


@given(st.integers(min_value=0, max_value=12), st.integers(min_value=1, max_value=4))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_range_loop_matches_python(hi, step):
    src = (
        "int a[];\n"
        "foreach i in [0:%d:%d] { a[i] = i; }\n"
        'printf("S=%%i N=%%i", sum_integer(a), size(a));' % (hi, step)
    )
    values = list(range(0, hi + 1, step))
    out = swift_run(src, workers=2)
    assert out.stdout_lines == ["S=%d N=%d" % (sum(values), len(values))]
