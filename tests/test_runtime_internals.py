"""Runtime internals: output collection, stats, config, R parse errors."""

from __future__ import annotations

import pytest

from repro import swift_run
from repro.mpi.comm import CommStats, _approx_size
from repro.rlang import RInterp
from repro.rlang.errors import RParseError
from repro.turbine import Output, RuntimeConfig


class TestOutput:
    def test_emit_preserves_order(self):
        out = Output()
        out.emit(0, "first")
        out.emit(1, "second")
        assert out.lines == [(0, "first"), (1, "second")]
        assert out.text() == "first\nsecond"

    def test_log_gated_by_trace(self):
        out = Output(trace=False)
        out.log(0, "dropped")
        assert out.logs == []
        out = Output(trace=True)
        out.log(0, "kept")
        assert out.logs == [(0, "kept")]

    def test_trace_collects_runtime_logs(self):
        res = swift_run("trace(1);", workers=2, echo=False)
        assert res.output.lines


class TestRuntimeConfig:
    def test_layout_derivation(self):
        cfg = RuntimeConfig(size=8, n_servers=2, n_engines=2)
        layout = cfg.layout()
        assert layout.n_workers == 4
        assert layout.servers == [6, 7]

    def test_invalid_layout_raises(self):
        with pytest.raises(ValueError):
            RuntimeConfig(size=2, n_servers=1, n_engines=1).layout()


class TestCommStats:
    def test_approx_sizes(self):
        assert _approx_size(b"abcd") == 4
        assert _approx_size("abc") == 3
        assert _approx_size(7) == 8
        assert _approx_size([1, 2]) == 8 + 16
        assert _approx_size({"k": 1}) >= 8

    def test_add_send(self):
        stats = CommStats()
        stats.add_send(b"12345678")
        assert stats.sends == 1
        assert stats.bytes_sent == 8


class TestRlangParseErrors:
    @pytest.mark.parametrize(
        "src",
        [
            "x <- (1 + ",  # unbalanced paren
            "f <- function(1) 2",  # bad parameter
            "for (1 in 1:3) x",  # bad loop var
            "x <- 'unterminated",  # bad string
            "repeat",  # missing body... parses? repeat needs statement
        ],
    )
    def test_bad_source_raises(self, src):
        R = RInterp()
        with pytest.raises(Exception):
            R.eval_code(src)

    def test_error_message_has_line(self):
        R = RInterp()
        with pytest.raises(RParseError, match="line"):
            R.eval_code("x <- 1\ny <- (")


class TestEngineCoverage:
    def test_trace_mode_collects_logs(self):
        from repro.turbine import run_turbine_program

        res = run_turbine_program(
            'proc swift:main {} { turbine::log "debug line" }',
            RuntimeConfig(size=3, trace=True),
        )
        assert res.output.logs == [(0, "debug line")]

    def test_environment_introspection_commands(self):
        from repro.turbine import run_turbine_program

        res = run_turbine_program(
            "proc swift:main {} {\n"
            "  turbine::log_output \"w=[ turbine::nworkers ]"
            " e=[ turbine::nengines ] s=[ turbine::nservers ]\"\n"
            "}",
            RuntimeConfig(size=6, n_servers=2, n_engines=1),
        )
        assert res.stdout_lines == ["w=3 e=1 s=2"]
