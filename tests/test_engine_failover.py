"""Engine fault tolerance: rule-table journaling, adoption, poison-task
quarantine, and per-task watchdogs.

Like :mod:`tests.test_faults`, every plan here is seeded from the
``FAULT_SEED`` environment variable (the CI matrix runs 0/1/2), so the
assertions must hold for *any* seed.  The CI rank-kill job filters
these tests with ``-k journal_on`` / ``-k journal_off`` /
``-k quarantine`` / ``-k watchdog``, which is why those substrings
appear in the test names.
"""

from __future__ import annotations

import os

import pytest

from repro import (
    DeadlineExceeded,
    EngineLost,
    FaultPlan,
    QuarantinedTask,
    swift_run,
)

SEED = int(os.environ.get("FAULT_SEED", "0"))

FANOUT = """
foreach i in [0:9] {
    string s = python(strcat("x=", fromint(i)), "x");
    trace(s);
}
"""
FANOUT_EXPECTED = sorted("trace: %d" % i for i in range(10))

# With engines=2 the program runs on engine rank 0; rank 1 serves
# split control tasks and stands by as the adopter.
PROGRAM_ENGINE, SPARE_ENGINE = 0, 1


def counters(res) -> dict:
    return res.trace.metrics["counters"]


class TestEngineDeath:
    def test_engine_kill_recovery_journal_on(self):
        # The program engine dies mid-run; the anchor server replays
        # its journal and the surviving engine adopts the pending
        # rules.  The output must be identical to a fault-free run.
        res = swift_run(
            FANOUT,
            workers=2,
            servers=1,
            engines=2,
            trace=True,
            faults=FaultPlan(seed=SEED).kill_rank(PROGRAM_ENGINE, after_tasks=3),
        )
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        assert res.ok
        c = counters(res)
        assert c["fault.kills"] == 1
        assert c["engine.journal.adoptions"] == 1
        # Only the survivor reports engine stats.
        assert len(res.engine_stats) == 1

    def test_spare_engine_kill_recovery_journal_on(self):
        # The non-program engine dies; it may hold split control work
        # but few (or no) pending rules.  The run must still complete.
        res = swift_run(
            FANOUT,
            workers=2,
            servers=1,
            engines=2,
            trace=True,
            faults=FaultPlan(seed=SEED).kill_rank(SPARE_ENGINE, after_tasks=1),
        )
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        assert res.ok
        assert counters(res)["fault.kills"] == 1

    def test_engine_kill_recovery_journal_on_replicate_on(self):
        # Journal + replication compose: the journal is part of the
        # anchor's replicated image, so engine recovery still works in
        # a world that can also lose servers.
        res = swift_run(
            FANOUT,
            workers=2,
            servers=2,
            engines=2,
            trace=True,
            faults=FaultPlan(seed=SEED).kill_rank(PROGRAM_ENGINE, after_tasks=3),
        )
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        assert res.ok
        assert counters(res)["engine.journal.adoptions"] == 1

    def test_engine_and_server_kill_recovery_journal_on_replicate_on(self):
        # Lose a server AND an engine in the same run: the heir
        # inherits the replicated journal, then adopts the engine.
        res = swift_run(
            FANOUT,
            workers=2,
            servers=2,
            engines=2,
            trace=True,
            faults=FaultPlan(seed=SEED)
            .kill_rank(5, after_tasks=5)  # the non-master server
            .kill_rank(PROGRAM_ENGINE, after_tasks=4),
        )
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        assert res.ok
        c = counters(res)
        assert c["adlb.repl.promotions"] == 1
        assert c["engine.journal.adoptions"] == 1

    def test_silent_engine_kill_recovery_journal_on(self):
        # A silent kill sends no dead-rank notification: the anchor
        # must notice the missing journal heartbeat on its own.
        res = swift_run(
            FANOUT,
            workers=2,
            servers=1,
            engines=2,
            trace=True,
            lease_timeout=0.5,
            faults=FaultPlan(seed=SEED).kill_rank(
                PROGRAM_ENGINE, after_tasks=3, silent=True
            ),
        )
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        assert res.ok
        assert counters(res)["engine.journal.adoptions"] == 1

    def test_kill_boundary_deterministic_across_backends(self):
        # Engine kills count rule fires, a dataflow property: the same
        # plan must pick the same boundary (and still recover) under
        # the bytecode VM and the compiled-AST interpreter alike.
        for backend in ("vm", "ast"):
            res = swift_run(
                FANOUT,
                workers=2,
                servers=1,
                engines=2,
                trace=True,
                tcl_exec=backend,
                faults=FaultPlan(seed=SEED).kill_rank(
                    PROGRAM_ENGINE, after_tasks=3
                ),
            )
            assert sorted(res.stdout_lines) == FANOUT_EXPECTED, backend
            assert res.ok, backend
            assert counters(res)["fault.kills"] == 1, backend


class TestEngineLostDiagnostic:
    def test_engine_kill_journal_off_raises_engine_lost(self):
        with pytest.raises(EngineLost, match="journaling is disabled"):
            swift_run(
                FANOUT,
                workers=2,
                servers=1,
                engines=2,
                journal=False,
                faults=FaultPlan(seed=SEED).kill_rank(
                    PROGRAM_ENGINE, after_tasks=3
                ),
            )

    def test_single_engine_kill_journal_off_raises_engine_lost(self):
        # One engine means journaling defaults off (nobody could adopt)
        # and its death is promptly diagnosed, not a hang.
        with pytest.raises(EngineLost) as info:
            swift_run(
                FANOUT,
                workers=2,
                servers=1,
                engines=1,
                faults=FaultPlan(seed=SEED).kill_rank(
                    PROGRAM_ENGINE, after_tasks=3
                ),
            )
        # The diagnostic reports the lost rule-table size.
        assert "pending rule(s)" in str(info.value)
        assert info.value.rank == PROGRAM_ENGINE

    def test_journal_on_needs_two_engines(self):
        with pytest.raises(ValueError, match="n_engines >= 2"):
            swift_run(FANOUT, workers=2, servers=1, engines=1, journal=True)


class TestQuarantine:
    # python_persist compiles to a distinct task proc, so the poison
    # rule can follow one unit without touching the other ten.
    POISONED = FANOUT + """
string p = python_persist("x='POISON'", "x");
trace(p);
"""

    def test_poison_task_quarantined_after_retries(self):
        res = swift_run(
            self.POISONED,
            workers=5,
            servers=1,
            engines=1,
            trace=True,
            max_retries=2,
            faults=FaultPlan(seed=SEED).poison_task("task:python_persist"),
        )
        # The run drains cleanly: every healthy unit completes, the
        # poisonous one is withdrawn instead of eating ranks forever.
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        assert not res.ok
        assert not res.failures
        assert len(res.quarantined) == 1
        q = res.quarantined[0]
        assert isinstance(q, QuarantinedTask)
        assert "python_persist" in q.payload
        # max_retries=2 allows 3 attempts; each one killed its rank.
        assert q.attempts == 3
        assert len(q.chain) == 3
        assert len({rank for rank, _ in q.chain}) == 3
        c = counters(res)
        assert c["fault.kills"] == 3
        assert c["adlb.quarantine.quarantined"] == 1
        assert c["adlb.quarantine.rank_kills"] == 3

    def test_quarantine_reported_by_cli_exit_code(self, capsys):
        from repro.cli import _report_failures

        res = swift_run(
            self.POISONED,
            workers=5,
            servers=1,
            engines=1,
            max_retries=2,
            faults=FaultPlan(seed=SEED).poison_task("task:python_persist"),
        )
        assert _report_failures(res) == 3
        err = capsys.readouterr().err
        assert "1 quarantined task(s)" in err
        assert "task:python_persist" in err


class TestTaskWatchdog:
    def test_watchdog_abandons_and_retries_overdue_task(self):
        # One attempt stalls well past the timeout: the watchdog fails
        # the unit back mid-flight and a retry completes it elsewhere,
        # so the run finishes long before the stall would have.
        res = swift_run(
            FANOUT,
            workers=3,
            servers=1,
            engines=1,
            trace=True,
            task_timeout=0.3,
            faults=FaultPlan(seed=SEED).slow_task(
                "task:python", delay=1.2, times=1
            ),
        )
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        assert res.ok
        c = counters(res)
        assert c["fault.slow_tasks"] == 1
        assert c["worker.watchdog.fired"] == 1
        assert c["worker.watchdog.abandoned"] == 1
        # The embedded interpreters were recycled after the abandon.
        assert c["worker.watchdog.recycled"] == 1
        assert c["adlb.lease.requeued"] == 1

    def test_watchdog_idle_run_unaffected(self):
        # No task exceeds the timeout: the watchdog never fires and the
        # run is bit-identical to an unwatched one.
        res = swift_run(
            FANOUT,
            workers=2,
            servers=1,
            engines=1,
            trace=True,
            task_timeout=30.0,
        )
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        assert res.ok
        c = counters(res)
        assert c.get("worker.watchdog.fired", 0) == 0
        assert c.get("worker.watchdog.abandoned", 0) == 0


class TestCheckpointAcrossEngineDeath:
    def test_restore_after_run_crossing_engine_death(self, tmp_path):
        # Run 1 loses an engine (journal recovery keeps it going),
        # checkpoints past the death, and is then cut off by the
        # deadline; run 2 restores and finishes the remaining work.
        ckpt = str(tmp_path / "run.ckpt")
        program = (
            "foreach i in [0:9] {\n"
            '    string code = strcat("import time; time.sleep(0.2); '
            "open('%s/out_\", fromint(i), \"','w').write('\", fromint(i), "
            '"\'); x=", fromint(i));\n'
            '    string s = python(code, "x");\n'
            "    trace(s);\n"
            "}\n"
        ) % tmp_path
        with pytest.raises(DeadlineExceeded):
            swift_run(
                program,
                workers=2,
                servers=1,
                engines=2,
                checkpoint_path=ckpt,
                checkpoint_interval=0.05,
                deadline=0.7,
                faults=FaultPlan(seed=SEED).kill_rank(
                    PROGRAM_ENGINE, after_tasks=3
                ),
            )
        assert os.path.exists(ckpt)
        done_before = {f for f in os.listdir(tmp_path) if f.startswith("out_")}
        assert len(done_before) < 10  # the run really was cut short
        res = swift_run(
            program, workers=2, servers=1, engines=2, restore=ckpt
        )
        assert res.ok
        for i in range(10):
            assert (tmp_path / ("out_%d" % i)).read_text() == str(i)
