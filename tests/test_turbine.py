"""Turbine runtime: hand-written Tcl programs over the full stack."""

from __future__ import annotations

import pytest

from repro.faults import TaskError
from repro.mpi.launcher import RankFailure
from repro.turbine import RuntimeConfig, run_turbine_program


def run(program: str, size: int = 4, **kw) -> list[str]:
    res = run_turbine_program(program, RuntimeConfig(size=size, **kw))
    return sorted(res.stdout_lines)


class TestRules:
    def test_rule_with_no_inputs_fires(self):
        out = run(
            "proc swift:main {} {\n"
            "  turbine::rule [ list ] { turbine::log_output go } LOCAL\n"
            "}\n"
        )
        assert out == ["go"]

    def test_rule_waits_for_input(self):
        out = run(
            "proc swift:main {} {\n"
            "  set td [ turbine::allocate integer ]\n"
            "  turbine::rule [ list $td ] [ list report $td ] LOCAL\n"
            "  turbine::store_integer $td 5\n"
            "}\n"
            "proc report { td } {\n"
            "  turbine::log_output \"value [ turbine::retrieve $td ]\"\n"
            "}\n"
        )
        assert out == ["value 5"]

    def test_chained_rules(self):
        out = run(
            "proc swift:main {} {\n"
            "  set a [ turbine::allocate integer ]\n"
            "  set b [ turbine::allocate integer ]\n"
            "  turbine::rule [ list $a ] [ list step $a $b ] LOCAL\n"
            "  turbine::rule [ list $b ] [ list fin $b ] LOCAL\n"
            "  turbine::store_integer $a 1\n"
            "}\n"
            "proc step { a b } {\n"
            "  turbine::store_integer $b [ expr { [ turbine::retrieve $a ] + 1 } ]\n"
            "}\n"
            "proc fin { b } { turbine::log_output \"b=[ turbine::retrieve $b ]\" }\n"
        )
        assert out == ["b=2"]

    def test_work_task_runs_on_worker(self):
        out = run(
            "proc swift:main {} {\n"
            "  turbine::rule [ list ] { turbine::log_output \"role [ turbine::role ]\" } WORK\n"
            "}\n"
        )
        assert out == ["role worker"]

    def test_local_rule_runs_on_engine(self):
        out = run(
            "proc swift:main {} {\n"
            "  turbine::rule [ list ] { turbine::log_output \"role [ turbine::role ]\" } LOCAL\n"
            "}\n"
        )
        assert out == ["role engine"]

    def test_many_parallel_work_tasks(self):
        out = run(
            "proc swift:main {} {\n"
            "  for { set i 0 } { $i < 30 } { incr i } {\n"
            "    turbine::spawn WORK [ list emit $i ]\n"
            "  }\n"
            "}\n"
            "proc emit { i } { turbine::log_output \"t$i\" }\n",
            size=6,
        )
        assert out == sorted("t%d" % i for i in range(30))

    def test_bad_rule_type_rejected(self):
        with pytest.raises(TaskError, match="bad rule type"):
            run(
                "proc swift:main {} { turbine::rule [ list ] { } BOGUS }\n"
            )

    def test_rule_unavailable_on_worker(self):
        with pytest.raises(TaskError, match="only available on engine"):
            run(
                "proc swift:main {} {\n"
                "  turbine::spawn WORK { turbine::rule [ list ] { } LOCAL }\n"
                "}\n"
            )


class TestDataOps:
    def test_container_insert_enumerate(self):
        out = run(
            "proc swift:main {} {\n"
            "  set c [ turbine::allocate_container 3 ]\n"
            "  set m1 [ turbine::allocate integer ]\n"
            "  set m2 [ turbine::allocate integer ]\n"
            "  turbine::store_integer $m1 10\n"
            "  turbine::store_integer $m2 20\n"
            "  turbine::container_insert $c 0 $m1\n"
            "  turbine::container_insert $c 1 $m2\n"
            "  turbine::rule [ list $c ] [ list dump $c ] LOCAL\n"
            "  turbine::write_refcount_decr $c 1\n"
            "}\n"
            "proc dump { c } {\n"
            "  set subs [ lsort -integer [ turbine::enumerate $c ] ]\n"
            "  turbine::log_output \"subs $subs\"\n"
            "}\n"
        )
        assert out == ["subs 0 1"]

    def test_container_reference_deref(self):
        out = run(
            "proc swift:main {} {\n"
            "  set c [ turbine::allocate_container 2 ]\n"
            "  set r [ turbine::allocate ref ]\n"
            "  set v [ turbine::allocate integer ]\n"
            "  turbine::container_reference $c k $r\n"
            "  turbine::deref_store $v $r\n"
            "  turbine::rule [ list $v ] [ list out $v ] LOCAL\n"
            "  set m [ turbine::allocate integer ]\n"
            "  turbine::store_integer $m 99\n"
            "  turbine::container_insert $c k $m\n"
            "  turbine::write_refcount_decr $c 1\n"
            "}\n"
            "proc out { v } { turbine::log_output [ turbine::retrieve $v ] }\n"
        )
        assert out == ["99"]

    def test_blob_through_datastore(self):
        out = run(
            "proc swift:main {} {\n"
            "  set b [ turbine::allocate blob ]\n"
            "  turbine::rule [ list ] [ list produce $b ] WORK\n"
            "  turbine::rule [ list $b ] [ list consume $b ] WORK\n"
            "}\n"
            "proc produce { b } {\n"
            "  turbine::store_blob $b [ blobutils::from_string payload ]\n"
            "}\n"
            "proc consume { b } {\n"
            "  set h [ turbine::retrieve $b ]\n"
            "  turbine::log_output [ blobutils::to_string $h ]\n"
            "}\n"
        )
        assert out == ["payload"]

    def test_copy_value_preserves_type(self):
        out = run(
            "proc swift:main {} {\n"
            "  set a [ turbine::allocate float ]\n"
            "  set b [ turbine::allocate float ]\n"
            "  turbine::store_float $a 2.5\n"
            "  turbine::copy_td $b $a\n"
            "  turbine::rule [ list $b ] [ list out $b ] LOCAL\n"
            "}\n"
            "proc out { b } { turbine::log_output [ turbine::retrieve $b ] }\n"
        )
        assert out == ["2.5"]

    def test_retrieve_unset_is_error(self):
        with pytest.raises(TaskError, match="before set"):
            run(
                "proc swift:main {} {\n"
                "  set td [ turbine::allocate integer ]\n"
                "  turbine::log_output [ turbine::retrieve $td ]\n"
                "}\n"
            )


class TestRuntimeBehavior:
    def test_multi_engine_control_distribution(self):
        res = run_turbine_program(
            "proc swift:main {} {\n"
            "  for { set i 0 } { $i < 20 } { incr i } {\n"
            "    turbine::spawn CONTROL [ list cbody $i ]\n"
            "  }\n"
            "}\n"
            "proc cbody { i } { turbine::log_output \"c$i\" }\n",
            RuntimeConfig(size=6, n_engines=2),
        )
        assert sorted(res.stdout_lines) == sorted("c%d" % i for i in range(20))
        # at least one control task should land on the second engine
        assert sum(e.control_tasks_run for e in res.engine_stats) == 20

    def test_engine_stats(self):
        res = run_turbine_program(
            "proc swift:main {} {\n"
            "  set td [ turbine::allocate integer ]\n"
            "  turbine::rule [ list $td ] { turbine::noop } LOCAL\n"
            "  turbine::store_integer $td 1\n"
            "}\n",
            RuntimeConfig(size=4),
        )
        stats = res.engine_stats[0]
        assert stats.rules_created == 1
        assert stats.notifications == 1
        assert stats.rules_fired_local == 1

    def test_interp_state_persists_on_worker(self):
        """Worker Tcl interps are retained across tasks (paper §III-C)."""
        res = run_turbine_program(
            "proc swift:main {} {\n"
            "  turbine::spawn WORK { python::persist {n = 10} {} } 10\n"
            "  turbine::spawn WORK { turbine::log_output [ python::persist {n += 1} {n} ] } 0\n"
            "}\n",
            RuntimeConfig(size=3),  # single worker: tasks run in order
        )
        assert res.stdout_lines == ["11"]

    def test_reinit_mode_clears_worker_state(self):
        with pytest.raises(TaskError, match="NameError"):
            run_turbine_program(
                "proc swift:main {} {\n"
                "  turbine::spawn WORK { python::eval {n = 10} {} } 10\n"
                "  turbine::spawn WORK { turbine::log_output [ python::eval {} {n} ] } 0\n"
                "}\n",
                RuntimeConfig(size=3, interp_mode="reinit"),
            )

    def test_output_collects_across_ranks(self):
        res = run_turbine_program(
            "proc swift:main {} {\n"
            "  turbine::spawn WORK { turbine::log_output from-worker }\n"
            "  turbine::log_output from-engine\n"
            "}\n",
            RuntimeConfig(size=4),
        )
        assert sorted(res.stdout_lines) == ["from-engine", "from-worker"]
        ranks = {rank for rank, _ in res.output.lines}
        assert len(ranks) == 2

    def test_worker_error_reports_failure(self):
        with pytest.raises(TaskError, match="invalid command"):
            run(
                "proc swift:main {} { turbine::spawn WORK { nonsense_cmd } }\n"
            )

    def test_dangling_future_times_out(self):
        with pytest.raises(RankFailure):
            run_turbine_program(
                "proc swift:main {} {\n"
                "  set td [ turbine::allocate integer ]\n"
                "  turbine::rule [ list $td ] { turbine::noop } LOCAL\n"
                "}\n",  # td never stored -> deadlock -> timeout
                RuntimeConfig(size=3, recv_timeout=1.0),
            )
