"""Fault injection, task leases, retries, and failure propagation.

The ``FAULT_SEED`` environment variable (used by the CI matrix) seeds
every :class:`FaultPlan` here, so the probabilistic injection paths get
exercised under several RNG streams without changing the assertions —
each test's invariants must hold for *any* seed.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import DeadlineExceeded, FaultPlan, TaskError, swift_run
from repro.faults import FaultState, InjectedFault, TaskFailure
from repro.mpi import DeadlockError, run_world
from repro.mpi.launcher import RankFailure
from repro.turbine import RuntimeConfig, run_turbine_program

SEED = int(os.environ.get("FAULT_SEED", "0"))

# Dataflow fan-out whose leaf tasks are WORK units (python() ships to
# workers, unlike a bare trace() which runs engine-local).
FANOUT = """
foreach i in [0:9] {
    string s = python(strcat("x=", fromint(i)), "x");
    trace(s);
}
"""
FANOUT_EXPECTED = sorted("trace: %d" % i for i in range(10))


def counters(res) -> dict:
    return res.trace.metrics["counters"]


class TestRetry:
    def test_transient_task_error_is_retried(self):
        res = swift_run(
            FANOUT,
            workers=2,
            trace=True,
            faults=FaultPlan(seed=SEED).fail_task("python", times=1),
        )
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        assert res.ok and not res.failures
        c = counters(res)
        assert c["adlb.lease.requeued"] >= 1
        assert c["fault.task_errors"] == 1

    def test_retries_exhausted_raises_task_error(self):
        with pytest.raises(TaskError, match="InjectedFault") as exc_info:
            swift_run(
                FANOUT,
                workers=2,
                max_retries=1,
                faults=FaultPlan(seed=SEED).fail_task("python", times=1000),
            )
        # Attempt accounting: the original try plus max_retries.
        assert "after 2 attempt(s)" in str(exc_info.value)

    def test_zero_retries_disables_leases(self):
        # max_retries=0 under on_error="retry" degenerates to fail_fast
        # semantics: the first failure surfaces, nothing is leased.
        res = swift_run(FANOUT, workers=2, trace=True, max_retries=0)
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        assert "adlb.lease.granted" not in counters(res)


class TestWorkerDeath:
    def test_kill_one_of_three_workers_run_completes(self):
        # Rank 2 (a worker) dies after its first task while holding a
        # leased unit; the server notices, requeues, and the two
        # survivors finish the job.
        res = swift_run(
            FANOUT,
            workers=3,
            trace=True,
            faults=FaultPlan(seed=SEED).kill_rank(2, after_tasks=1),
        )
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        assert res.ok
        c = counters(res)
        assert c["adlb.lease.requeued"] >= 1
        assert c["adlb.lease.dead_ranks"] == 1
        assert c["fault.kills"] == 1
        # Only the survivors report stats.
        assert len(res.worker_stats) == 2
        assert sum(w.tasks_run for w in res.worker_stats) == 9

    def test_targeted_unit_outstanding_on_killed_rank(self):
        # A WORK task targeted at the doomed rank is queued while that
        # rank dies: the dead-rank sweep must strip the target and let
        # any surviving worker run it.
        program = (
            "proc swift:main {} {\n"
            "  turbine::rule [ list ] { turbine::log_output first } WORK"
            " -target 2\n"
            "  turbine::rule [ list ] { turbine::log_output second } WORK"
            " -target 2\n"
            "}\n"
        )
        res = run_turbine_program(
            program,
            RuntimeConfig(
                size=5,
                trace=True,
                faults=FaultPlan(seed=SEED).kill_rank(2, after_tasks=1),
            ),
        )
        assert sorted(res.stdout_lines) == ["first", "second"]
        assert counters(res)["adlb.lease.dead_ranks"] == 1

    def test_silent_death_recovered_by_lease_expiry(self):
        # A silent kill sends no dead-rank notification; recovery rests
        # entirely on the lease-timeout sweep.
        res = swift_run(
            FANOUT,
            workers=3,
            trace=True,
            lease_timeout=0.5,
            faults=FaultPlan(seed=SEED).kill_rank(2, after_tasks=1, silent=True),
        )
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        c = counters(res)
        assert c["adlb.lease.expired"] >= 1
        assert c["adlb.lease.dead_ranks"] == 1


class TestEngineFailure:
    # The injected fault matches the compiled rule body the engine
    # evaluates (every STC-compiled statement goes through a generated
    # proc), so the failure happens during rule evaluation.
    def test_engine_rule_failure_fail_fast(self):
        with pytest.raises(TaskError, match="InjectedFault"):
            run_turbine_program(
                "proc swift:main {} {\n"
                "  turbine::rule [ list ] { boom_rule } LOCAL\n"
                "}\n"
                "proc boom_rule {} { turbine::log_output fired }\n",
                RuntimeConfig(
                    size=4,
                    on_error="fail_fast",
                    faults=FaultPlan(seed=SEED).fail_task("boom_rule"),
                ),
            )

    def test_engine_rule_failure_continue_records(self):
        res = run_turbine_program(
            "proc swift:main {} {\n"
            "  turbine::rule [ list ] { boom_rule } LOCAL\n"
            "  turbine::rule [ list ] { turbine::log_output ok } LOCAL\n"
            "}\n"
            "proc boom_rule {} { turbine::log_output fired }\n",
            RuntimeConfig(
                size=4,
                on_error="continue",
                faults=FaultPlan(seed=SEED).fail_task("boom_rule"),
            ),
        )
        assert res.stdout_lines == ["ok"]
        assert not res.ok
        assert len(res.failures) == 1
        assert res.failures[0].kind == "rule"
        assert "InjectedFault" in res.failures[0].error


class TestOnErrorModes:
    def test_fail_fast_is_prompt_and_traceback_bearing(self):
        t0 = time.perf_counter()
        with pytest.raises(TaskError) as exc_info:
            swift_run(
                FANOUT,
                workers=2,
                on_error="fail_fast",
                faults=FaultPlan(seed=SEED).fail_task("python"),
            )
        elapsed = time.perf_counter() - t0
        assert elapsed < 5.0
        msg = str(exc_info.value)
        assert "Traceback" in msg
        assert "InjectedFault" in msg
        # The failure surfaces as TaskError, not a RankFailure wrapper.
        assert not isinstance(exc_info.value, RankFailure)

    def test_continue_records_accurate_counts(self):
        res = swift_run(
            "foreach i in [0:5] {\n"
            '    string s = python(strcat("x=", fromint(i)), "x");\n'
            "    trace(s);\n"
            "}\n",
            workers=2,
            on_error="continue",
            faults=FaultPlan(seed=SEED).fail_task("python", times=2),
        )
        assert not res.ok
        assert len(res.failures) == 2
        assert res.tasks_run == 4
        assert len(res.stdout_lines) == 4
        for f in res.failures:
            assert isinstance(f, TaskFailure)
            assert f.kind == "task"
            assert "InjectedFault" in f.error
            assert "Traceback" in f.traceback

    def test_real_task_error_retried_then_surfaced(self):
        # No injection: a genuinely broken task exhausts retries and
        # surfaces with the underlying error text.
        with pytest.raises(TaskError, match="ZeroDivisionError"):
            swift_run(
                'string s = python("1/0", ""); trace(s);',
                workers=2,
                max_retries=1,
            )

    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            swift_run("trace(1);", workers=2, on_error="explode")


class TestMessageFaults:
    def test_slow_task_and_delayed_messages_complete(self):
        res = swift_run(
            FANOUT,
            workers=2,
            trace=True,
            faults=(
                FaultPlan(seed=SEED)
                .slow_task("python", delay=0.01, times=2)
                .delay_messages(delay=0.005, times=3)
            ),
        )
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        c = counters(res)
        assert c["fault.slow_tasks"] == 2
        assert c["fault.delayed_msgs"] == 3

    def test_deadline_on_dropped_messages(self):
        # Dropping async deliveries (tag 13) wedges the dataflow; the
        # deadline turns the hang into an orderly DeadlineExceeded.
        with pytest.raises(DeadlineExceeded):
            swift_run(
                FANOUT,
                workers=2,
                deadline=1.5,
                recv_timeout=30.0,
                faults=FaultPlan(seed=SEED).drop_messages(tag=13, times=100),
            )


class TestDiagnostics:
    def test_recv_hang_report_names_the_blockage(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("noise", dest=1, tag=9)
            elif comm.rank == 1:
                comm.recv(source=0, tag=42, timeout=0.2)

        with pytest.raises(RankFailure) as exc_info:
            run_world(2, main)
        failures = dict(exc_info.value.failures)
        err = failures[1]
        assert isinstance(err, DeadlockError)
        msg = str(err)
        assert "rank 1 blocked in recv(source=0, tag=42)" in msg
        assert "pending-queue depths" in msg
        assert "rank1=1" in msg  # the unmatched tag-9 message

    def test_rank_failure_reports_roles_and_tracebacks(self):
        with pytest.raises(TaskError):
            swift_run(
                FANOUT,
                workers=2,
                on_error="fail_fast",
                faults=FaultPlan(seed=SEED).fail_task("python"),
            )
        # The richer diagnostics live on RankFailure itself.
        def main(comm):
            if comm.rank == 1:
                raise RuntimeError("kaboom")

        with pytest.raises(RankFailure) as exc_info:
            run_world(2, main, rank_labels=["engine", "worker"])
        msg = str(exc_info.value)
        assert "rank 1 (worker)" in msg
        assert "Traceback" in msg
        assert "kaboom" in msg

    def test_stuck_rank_diagnostics_on_join_timeout(self):
        # One rank never unwinds: the launcher reports it as stuck with
        # its current stack instead of hanging forever.
        def main(comm):
            if comm.rank == 1:
                raise RuntimeError("primary failure")
            if comm.rank == 0:
                # Ignores the abort; sleeps past the grace window.
                for _ in range(50):
                    time.sleep(0.1)

        with pytest.raises(RankFailure) as exc_info:
            run_world(2, main, shutdown_grace=0.5)
        msg = str(exc_info.value)
        assert "primary failure" in msg


class TestFaultPlanUnit:
    def test_fail_task_times_and_rank_filters(self):
        state = FaultState(
            FaultPlan(seed=SEED).fail_task("python", times=2, rank=3)
        )
        assert state.on_task(1, "python: x") is None  # wrong rank
        assert state.on_task(3, "shell: ls") is None  # no match
        assert state.on_task(3, "python: x")[0] == "raise"
        assert state.on_task(3, "python: x")[0] == "raise"
        assert state.on_task(3, "python: x") is None  # times exhausted
        assert state.stats.task_errors == 2

    def test_kill_after_tasks(self):
        state = FaultState(FaultPlan(seed=SEED).kill_rank(2, after_tasks=2))
        assert state.on_task(2, "a") is None
        assert state.on_task(2, "b") is None
        assert state.on_task(2, "c") == ("kill", False)

    def test_drop_probability_is_seeded(self):
        def sends(seed):
            state = FaultState(
                FaultPlan(seed=seed).drop_messages(probability=0.5, times=10**9)
            )
            return [state.on_send(0, 1, 13) for _ in range(64)]

        assert sends(SEED) == sends(SEED)  # deterministic replay
        dropped = [d for d in sends(SEED) if d is not None]
        assert 0 < len(dropped) < 64

    def test_injected_fault_message(self):
        state = FaultState(
            FaultPlan(seed=SEED).fail_task("x", message="custom boom")
        )
        kind, msg = state.on_task(0, "x")
        assert kind == "raise" and msg == "custom boom"
        with pytest.raises(InjectedFault, match="custom boom"):
            raise InjectedFault(msg)

    def test_drop_probability_respects_times_budget(self):
        # probability=1.0 makes every send a candidate, so the times
        # budget is the only thing bounding the damage.
        state = FaultState(
            FaultPlan(seed=SEED).drop_messages(probability=1.0, times=3)
        )
        directives = [state.on_send(0, 1, 10) for _ in range(10)]
        assert directives[:3] == [("drop", 0.0)] * 3
        assert directives[3:] == [None] * 7
        assert state.stats.dropped_msgs == 3

    def test_kill_only_skips_task_rules(self):
        # The engine's release hook: the unit counts toward the kill
        # schedule, but fail/slow rules apply where the payload runs.
        plan = FaultPlan(seed=SEED).fail_task("x").kill_rank(5, after_tasks=1)
        state = FaultState(plan)
        assert state.on_task(5, "x marks", kill_only=True) is None
        assert state.on_task(5, "x marks", kill_only=True) == ("kill", False)
        assert state.stats.task_errors == 0

    def test_silent_kill_directive_carries_flag(self):
        state = FaultState(FaultPlan(seed=SEED).kill_rank(1, silent=True))
        assert state.on_task(1, "anything") == ("kill", True)
        state = FaultState(
            FaultPlan(seed=SEED).poison_task("bad", silent=True)
        )
        assert state.on_task(0, "a bad unit") == ("kill", True)

    def test_overlapping_task_rules_first_match_wins_until_exhausted(self):
        # Two rules match the same payload: first-listed wins while it
        # has budget, then the next takes over, then injections stop.
        plan = (
            FaultPlan(seed=SEED)
            .fail_task("python", times=1, message="first")
            .slow_task("python", delay=0.5, times=1)
        )
        state = FaultState(plan)
        assert state.on_task(0, "python: a") == ("raise", "first")
        assert state.on_task(0, "python: b") == ("sleep", 0.5)
        assert state.on_task(0, "python: c") is None
        assert state.stats.task_errors == 1
        assert state.stats.slow_tasks == 1

    def test_exhausted_budget_leaves_later_msg_rules_live(self):
        plan = (
            FaultPlan(seed=SEED)
            .drop_messages(tag=10, times=1)
            .delay_messages(delay=0.01, tag=10, times=None)
        )
        state = FaultState(plan)
        assert state.on_send(0, 1, 10) == ("drop", 0.0)
        assert state.on_send(0, 1, 10) == ("sleep", 0.01)
        assert state.on_send(2, 3, 10) == ("sleep", 0.01)
        assert state.on_send(2, 3, 11) is None  # tag filter still holds


class TestFaultPlanSerialization:
    def test_plan_round_trips_through_dict(self):
        import json

        plan = (
            FaultPlan(seed=41)
            .kill_rank(2, after_tasks=3, silent=True)
            .poison_task("boom", times=1)
            .fail_task("python", times=2, rank=4, message="m")
            .slow_task("sh", delay=0.02, times=None)
            .drop_messages(src=1, dest=2, tag=10, times=5, probability=0.5)
            .delay_messages(delay=0.004, tag=13)
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.to_dict() == plan.to_dict()
        assert clone.rule_count() == plan.rule_count() == 6
        # JSON-safe: survives an actual encode/decode cycle.
        assert json.loads(json.dumps(plan.to_dict())) == plan.to_dict()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(TypeError):
            FaultPlan.from_dict(
                {
                    "seed": 0,
                    "kills": [
                        {
                            "rank": 1,
                            "after_tasks": 0,
                            "silent": False,
                            "bogus": 1,
                        }
                    ],
                }
            )

    def test_round_tripped_plan_replays_identically(self):
        # The deserialized plan drives the same injections end to end.
        plan = FaultPlan(seed=SEED).fail_task("python", times=1)
        clone = FaultPlan.from_dict(plan.to_dict())
        res = swift_run(FANOUT, workers=2, trace=True, faults=clone)
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        assert counters(res)["fault.task_errors"] == 1


class TestFaultsOffPath:
    def test_no_faults_no_lease_counters_without_retry_need(self):
        res = swift_run(FANOUT, workers=2, trace=True, max_retries=0)
        c = counters(res)
        assert not any(k.startswith("fault.") for k in c)
        assert not any(k.startswith("adlb.lease") for k in c)

    def test_default_run_unaffected(self):
        res = swift_run(FANOUT, workers=2)
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        assert res.ok
