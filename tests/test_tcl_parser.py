"""Tcl script parsing structure (words, segments, commands)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcl.parser import TclParseError, parse_cached, parse_script


def words_of(script: str, cmd_index: int = 0):
    return parse_script(script)[cmd_index].words


class TestCommandSplitting:
    def test_newline_and_semicolon(self):
        cmds = parse_script("a b\nc d; e")
        assert [len(c.words) for c in cmds] == [2, 2, 1]

    def test_empty_commands_skipped(self):
        assert parse_script(";;\n\n  ;") == []

    def test_newline_inside_braces_does_not_split(self):
        cmds = parse_script("proc f {} {\n body \n}")
        assert len(cmds) == 1
        assert len(cmds[0].words) == 4  # proc, f, {}, {body}

    def test_newline_inside_quotes_does_not_split(self):
        cmds = parse_script('set x "a\nb"')
        assert len(cmds) == 1

    def test_newline_inside_brackets_does_not_split(self):
        cmds = parse_script("set x [cmd\narg]")
        assert len(cmds) == 1

    def test_comment_consumes_line(self):
        cmds = parse_script("# comment ; still comment\nreal cmd")
        assert len(cmds) == 1

    def test_line_numbers_recorded(self):
        cmds = parse_script("one\n\nthree\nfour")
        assert [c.line for c in cmds] == [1, 3, 4]


class TestWordForms:
    def test_bare_literal(self):
        (w,) = words_of("word")
        assert w.literal == "word"

    def test_braced_word_raw(self):
        w = words_of("set {a $x [b]}")[1]
        assert w.literal == "a $x [b]"

    def test_quoted_word_with_substitution(self):
        w = words_of('set "pre $x post"')[1]
        kinds = [k for k, _ in w.segments]
        assert kinds == ["lit", "var", "lit"]

    def test_bare_word_with_command_sub(self):
        w = words_of("set a[b c]d")[1]
        assert [k for k, _ in w.segments] == ["lit", "cmd", "lit"]

    def test_variable_name_forms(self):
        w = words_of("set $a::b")[1]
        assert w.segments[0] == ("var", "a::b")
        w = words_of("set ${weird name}")[1]
        assert w.segments[0] == ("var", "weird name")

    def test_expand_prefix(self):
        w = words_of("cmd {*}$list")[1]
        assert w.expand is True

    def test_literal_dollar(self):
        (w,) = words_of('"5$"')
        assert w.literal == "5$"

    def test_nested_brackets(self):
        w = words_of("set [a [b [c]]]")[1]
        assert w.segments[0][0] == "cmd"
        assert w.segments[0][1] == "a [b [c]]"

    def test_braces_inside_brackets(self):
        w = words_of("set [cmd {un} {balanced {}} ]")[1]
        assert w.segments[0][0] == "cmd"

    def test_backslash_newline_joins_words(self):
        cmds = parse_script("cmd a \\\n b")
        assert len(cmds) == 1
        assert len(cmds[0].words) == 3


class TestErrors:
    def test_unclosed_brace(self):
        with pytest.raises(TclParseError, match="close-brace"):
            parse_script("set x {abc")

    def test_unclosed_bracket(self):
        with pytest.raises(TclParseError, match="close-bracket"):
            parse_script("set x [abc")

    def test_unclosed_quote(self):
        with pytest.raises(TclParseError, match="close quote"):
            parse_script('set x "abc')

    def test_text_after_close_brace(self):
        with pytest.raises(TclParseError, match="after close-brace"):
            parse_script("set x {a}b")

    def test_text_after_close_quote(self):
        with pytest.raises(TclParseError, match="after close-quote"):
            parse_script('set x "a"b')


class TestCache:
    def test_cache_returns_same_object(self):
        a = parse_cached("set x 1")
        b = parse_cached("set x 1")
        assert a is b

    def test_different_scripts_different_objects(self):
        assert parse_cached("set x 1") is not parse_cached("set x 2")


@given(
    st.lists(
        st.text(
            alphabet=st.characters(
                whitelist_categories=("Lu", "Ll", "Nd"),
            ),
            min_size=1,
            max_size=8,
        ),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=150, deadline=None)
def test_property_plain_words_parse_unchanged(words):
    cmds = parse_script(" ".join(words))
    assert len(cmds) == 1
    assert [w.literal for w in cmds[0].words] == words
