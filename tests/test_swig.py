"""The SWIG/FortWrap binding pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.interlang import register_blobutils
from repro.swig import (
    CParseError,
    FortranError,
    NativeLibrary,
    install_package,
    parse_header,
    register_library,
    translate_fortran,
)
from repro.tcl import Interp, TclError


@pytest.fixture()
def tcl():
    it = Interp()
    it.echo = False
    register_blobutils(it)
    return it


class TestCParse:
    def test_simple_function(self):
        (f,) = parse_header("int add(int a, int b);")
        assert f.name == "add"
        assert str(f.ret) == "int"
        assert [str(p.ctype) for p in f.params] == ["int", "int"]

    def test_pointer_types(self):
        (f,) = parse_header("double dot(const double* a, double *b, int n);")
        assert f.params[0].ctype.pointers == 1
        assert f.params[0].ctype.const
        assert f.params[1].ctype.pointers == 1

    def test_char_star_is_string(self):
        (f,) = parse_header("const char* greet(const char* name);")
        assert f.ret.is_string
        assert f.params[0].ctype.is_string

    def test_void_params(self):
        (f,) = parse_header("int version(void);")
        assert f.params == ()

    def test_void_return(self):
        (f,) = parse_header("void run(double* x, int n);")
        assert f.ret.is_void

    def test_comments_and_preprocessor_skipped(self):
        funcs = parse_header(
            """
            #include <math.h>
            /* block
               comment */
            // line comment
            int f(int x); // trailing
            """
        )
        assert len(funcs) == 1

    def test_extern_c_block(self):
        funcs = parse_header('extern "C" { int f(int x); int g(int y); }')
        assert [f.name for f in funcs] == ["f", "g"]

    def test_typedef_resolution(self):
        funcs = parse_header("typedef double real8; real8 f(real8 x);")
        assert str(funcs[0].ret) == "double"

    def test_unnamed_params_get_names(self):
        (f,) = parse_header("int f(int, double);")
        assert [p.name for p in f.params] == ["arg0", "arg1"]

    def test_integer_width_normalization(self):
        (f,) = parse_header("int64_t f(size_t n, unsigned k);")
        assert str(f.ret) == "int"
        assert all(str(p.ctype) == "int" for p in f.params)

    def test_unknown_type_raises(self):
        with pytest.raises(CParseError):
            parse_header("widget f(widget w);")

    def test_variable_declarations_ignored(self):
        assert parse_header("int global_counter; int f(int x);")[0].name == "f"


class TestFortWrap:
    def test_subroutine(self):
        hdr = translate_fortran(
            """
            subroutine scale(x, n, f)
              real(8), intent(inout) :: x(n)
              integer, intent(in) :: n
              real(8), intent(in) :: f
            end subroutine
            """
        )
        assert "void scale(double* x, int n, double f);" in hdr

    def test_function_with_result(self):
        hdr = translate_fortran(
            """
            function norm2(v, n) result(r)
              real(8), intent(in) :: v(n)
              integer, intent(in) :: n
              real(8) :: r
            end function
            """
        )
        assert "double norm2(double* v, int n);" in hdr

    def test_intent_out_scalar_becomes_pointer(self):
        hdr = translate_fortran(
            """
            subroutine stats(x, n, total)
              real(8), intent(in) :: x(n)
              integer, intent(in) :: n
              real(8), intent(out) :: total
            end subroutine
            """
        )
        assert "double* total" in hdr

    def test_character_arg(self):
        hdr = translate_fortran(
            """
            subroutine hello(msg)
              character(len=*), intent(in) :: msg
            end subroutine
            """
        )
        assert "char* msg" in hdr

    def test_output_parses_as_c(self):
        hdr = translate_fortran(
            """
            subroutine go(a, b, n)
              integer, intent(in) :: n
              real(8), intent(in) :: a(n)
              real(8), intent(out) :: b(n)
            end subroutine
            """
        )
        funcs = parse_header(hdr)
        assert funcs[0].name == "go"

    def test_missing_declaration_raises(self):
        with pytest.raises(FortranError):
            translate_fortran("subroutine f(x)\nend subroutine")

    def test_no_functions_raises(self):
        with pytest.raises(FortranError):
            translate_fortran("program main\nend program")


def _demo_lib() -> NativeLibrary:
    lib = NativeLibrary("demo")

    @lib.function("int add(int a, int b);")
    def add(a, b):
        return a + b

    @lib.function("double arr_sum(double* x, int n);")
    def arr_sum(x, n):
        return float(np.sum(x[:n]))

    @lib.function("void arr_scale(double* x, int n, double f);")
    def arr_scale(x, n, f):
        x[:n] *= f

    @lib.function("const char* greet(const char* name);")
    def greet(name):
        return "hello " + name

    return lib


class TestBindings:
    def test_scalar_call(self, tcl):
        register_library(tcl, _demo_lib())
        assert tcl.eval("demo::add 40 2") == "42"

    def test_string_call(self, tcl):
        register_library(tcl, _demo_lib())
        assert tcl.eval("demo::greet world") == "hello world"

    def test_blob_pointer_arg(self, tcl):
        register_library(tcl, _demo_lib())
        out = tcl.eval(
            "set h [ blobutils::create_floats 1.0 2.0 3.5 ]\n"
            "demo::arr_sum $h 3"
        )
        assert out == "6.5"

    def test_in_place_mutation_visible(self, tcl):
        register_library(tcl, _demo_lib())
        out = tcl.eval(
            "set h [ blobutils::create_floats 1.0 2.0 ]\n"
            "demo::arr_scale $h 2 10.0\n"
            "blobutils::to_list $h"
        )
        assert out == "10.0 20.0"

    def test_wrong_arg_count(self, tcl):
        register_library(tcl, _demo_lib())
        with pytest.raises(TclError, match="wrong # args"):
            tcl.eval("demo::add 1")

    def test_non_numeric_scalar(self, tcl):
        register_library(tcl, _demo_lib())
        with pytest.raises(TclError, match="expected int"):
            tcl.eval("demo::add x 1")

    def test_bad_pointer_handle(self, tcl):
        register_library(tcl, _demo_lib())
        with pytest.raises(TclError, match="pointer handle"):
            tcl.eval("demo::arr_sum bogus 1")

    def test_native_exception_surfaces(self, tcl):
        lib = NativeLibrary("bad")

        @lib.function("int crash(int x);")
        def crash(x):
            raise ZeroDivisionError("inside native code")

        register_library(tcl, lib)
        with pytest.raises(TclError, match="inside native code"):
            tcl.eval("bad::crash 1")

    def test_package_require_lazy_load(self, tcl):
        install_package(tcl, _demo_lib())
        assert tcl.lookup_command("demo::add") is None
        tcl.eval("package require demo")
        assert tcl.eval("demo::add 1 2") == "3"

    def test_call_counter(self, tcl):
        lib = _demo_lib()
        register_library(tcl, lib)
        tcl.eval("demo::add 1 2")
        tcl.eval("demo::add 3 4")
        assert lib.functions["add"].calls == 2

    def test_pointer_return_becomes_blob(self, tcl):
        lib = NativeLibrary("gen")

        @lib.function("double* make_range(int n);")
        def make_range(n):
            return np.arange(n, dtype=np.float64)

        register_library(tcl, lib)
        out = tcl.eval("blobutils::to_list [ gen::make_range 4 ]")
        assert out == "0.0 1.0 2.0 3.0"

    def test_full_fortran_pipeline(self, tcl):
        """Fortran -> FortWrap -> C header -> SWIG -> Tcl (Fig. 3 + §III-B)."""
        hdr = translate_fortran(
            """
            function dotp(a, b, n) result(d)
              real(8), intent(in) :: a(n), b(n)
              integer, intent(in) :: n
              real(8) :: d
            end function
            """
        )
        lib = NativeLibrary("flib")
        lib.add_header(hdr, {"dotp": lambda a, b, n: float(np.dot(a[:n], b[:n]))})
        register_library(tcl, lib)
        out = tcl.eval(
            "set a [ blobutils::create_floats 1.0 2.0 3.0 ]\n"
            "set b [ blobutils::create_floats 4.0 5.0 6.0 ]\n"
            "flib::dotp $a $b 3"
        )
        assert out == "32.0"

    def test_missing_impl_raises(self):
        lib = NativeLibrary("x")
        with pytest.raises(Exception, match="no implementation"):
            lib.add_header("int f(int a);", {})
