"""The repro.obs tracing/metrics layer."""

from __future__ import annotations

import json
import time

import pytest

import repro
from repro import RuntimeConfig, SwiftRuntime, swift_run
from repro.obs import Metrics, Profile, Trace, TraceEvent, Tracer

PROGRAM = """
foreach i in [0:5] {
    string o = python(strcat("x = ", fromint(i), " * 2"), "x");
    printf("d(%i)=%s", i, o);
}
"""

SEQUENTIAL = 'printf("one line only");'


class TestTracer:
    def test_instant_and_complete(self):
        tr = Tracer()
        tr.instant(0, "c", "i", {"k": 1})
        t0 = tr.now()
        time.sleep(0.002)
        tr.complete(1, "c", "s", t0)
        trace = tr.freeze()
        assert len(trace) == 2
        inst, span = trace.events
        assert inst.dur == 0.0 and inst.payload == {"k": 1}
        assert span.dur >= 0.002 and span.rank == 1

    def test_span_nesting(self):
        tr = Tracer()
        with tr.span(0, "c", "outer"):
            with tr.span(0, "c", "inner"):
                time.sleep(0.002)
        trace = tr.freeze()
        inner, outer = sorted(trace.spans(), key=lambda e: e.dur)
        assert inner.name == "inner" and outer.name == "outer"
        # the outer span fully contains the inner one
        assert outer.t <= inner.t
        assert outer.end >= inner.end

    def test_ring_buffer_drops_oldest(self):
        tr = Tracer(capacity=8)
        for i in range(20):
            tr.instant(0, "c", "e%d" % i)
        trace = tr.freeze()
        assert len(trace) == 8
        assert trace.dropped == 12
        assert trace.events[-1].name == "e19"  # newest survive

    def test_freeze_sorts_by_time(self):
        tr = Tracer()
        t0 = tr.now()
        tr.instant(0, "c", "later")
        tr.complete(0, "c", "earlier", t0)  # starts before the instant
        names = [e.name for e in tr.freeze().events]
        assert names == ["earlier", "later"]


class TestTrace:
    def _sample(self) -> Trace:
        tr = Tracer()
        tr.instant(0, "adlb", "put")
        t0 = tr.now()
        tr.complete(1, "task", "task", t0, t0 + 0.5)
        tr.complete(2, "task", "task", t0, t0 + 0.25)
        return tr.freeze(meta={"elapsed": 1.0, "roles": {1: "worker", 2: "worker"}})

    def test_filters_and_totals(self):
        trace = self._sample()
        assert len(trace.spans("task")) == 2
        assert len(trace.instants("adlb")) == 1
        cats = trace.by_category()
        assert cats["task"].spans == 2
        assert cats["task"].total_dur == pytest.approx(0.75)
        assert cats["adlb"].count == 1 and cats["adlb"].total_dur == 0.0

    def test_chrome_schema(self, tmp_path):
        trace = self._sample()
        doc = trace.to_chrome()
        assert set(doc) >= {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {m["args"]["name"] for m in metas} == {
            "rank 0 (rank)",
            "rank 1 (worker)",
            "rank 2 (worker)",
        }
        assert len(spans) == 2 and len(instants) == 1
        for e in spans:
            assert e["dur"] > 0 and isinstance(e["tid"], int)
            assert e["ts"] >= 0  # microseconds since epoch
        path = tmp_path / "t.json"
        trace.save_chrome(str(path))
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == len(events)

    def test_profile_aggregation(self):
        prof = Profile.from_trace(self._sample())
        assert prof.wall == pytest.approx(1.0)
        by_rank = {w.rank: w for w in prof.workers}
        assert by_rank[1].utilization == pytest.approx(0.5)
        assert by_rank[2].utilization == pytest.approx(0.25)
        assert prof.efficiency == pytest.approx(0.375)
        text = prof.render()
        assert "per-category time" in text
        assert "worker utilization" in text


class TestMetrics:
    def test_counters_gauges_histograms(self):
        m = Metrics()
        m.count("a", 2)
        m.count("a")
        m.gauge_max("g", 5)
        m.gauge_max("g", 3)
        m.observe("h", 1.0)
        m.observe("h", 3.0)
        snap = m.snapshot()
        assert snap["counters"]["a"] == 3
        assert snap["gauges"]["g"] == 5
        assert snap["histograms"]["h"] == {
            "count": 2,
            "total": 4.0,
            "min": 1.0,
            "max": 3.0,
            "mean": 2.0,
            "p50": 1.0,
            "p95": 3.0,
            "p99": 3.0,
        }

    def test_fold_struct_sums_across_ranks(self):
        from repro.turbine.worker import WorkerStats

        m = Metrics()
        m.fold_struct("worker", WorkerStats(tasks_run=3, busy_time=0.5), rank=1)
        m.fold_struct("worker", WorkerStats(tasks_run=2, busy_time=0.25), rank=2)
        snap = m.snapshot()
        assert snap["counters"]["worker.tasks_run"] == 5
        assert snap["gauges"]["worker.tasks_run[1]"] == 3
        assert snap["gauges"]["worker.tasks_run[2]"] == 2


class TestTracedRuns:
    def test_untraced_run_has_no_trace(self):
        res = swift_run(SEQUENTIAL, workers=2)
        assert res.trace is None
        with pytest.raises(RuntimeError, match="trace=True"):
            res.profile

    def test_on_off_output_parity(self):
        off = swift_run(SEQUENTIAL, workers=2)
        on = swift_run(SEQUENTIAL, workers=2, trace=True)
        assert on.stdout == off.stdout
        assert on.stdout_lines == off.stdout_lines
        assert on.tasks_run == off.tasks_run

    def test_no_tracer_constructed_when_disabled(self, monkeypatch):
        """The disabled path must never even build a Tracer."""

        def boom(*a, **k):
            raise AssertionError("Tracer constructed on the disabled path")

        monkeypatch.setattr(repro.obs, "Tracer", boom)
        res = swift_run(PROGRAM, workers=2)
        assert res.trace is None
        assert len(res.stdout_lines) == 6

    def test_traced_run_covers_all_layers(self):
        res = swift_run(PROGRAM, workers=2, trace=True)
        cats = res.trace.by_category()
        for cat in ("mpi", "adlb", "rule", "engine", "task", "compile", "run"):
            assert cat in cats, "missing category %r" % cat
        # one task span per leaf task, on worker ranks
        task_spans = res.trace.spans("task")
        assert len(task_spans) == res.tasks_run == 6
        roles = res.trace.meta["roles"]
        assert all(roles[e.rank] == "worker" for e in task_spans)

    def test_metrics_absorb_server_stats(self):
        res = swift_run(PROGRAM, workers=2, trace=True)
        counters = res.trace.metrics["counters"]
        assert counters["adlb.tasks_matched"] == sum(
            s.tasks_matched for s in res.server_stats
        )
        assert counters["worker.tasks_run"] == res.tasks_run
        assert counters["mpi.sends"] == counters["mpi.recvs"] > 0
        assert counters["engine.rules_created"] == sum(
            e.rules_created for e in res.engine_stats
        )

    def test_trace_capacity_option(self):
        res = swift_run(PROGRAM, workers=2, trace=True, trace_capacity=64)
        assert len(res.trace) == 64
        assert res.trace.dropped > 0

    def test_profile_worker_utilization_ranks(self):
        res = swift_run(PROGRAM, workers=3, trace=True)
        prof = res.profile
        worker_ranks = {
            r for r, role in res.trace.meta["roles"].items() if role == "worker"
        }
        assert {w.rank for w in prof.workers} == worker_ranks
        assert sum(w.tasks for w in prof.workers) == res.tasks_run
        assert 0.0 <= prof.efficiency <= 1.0

    def test_targeted_match_counters(self):
        res = swift_run(PROGRAM, workers=2, trace=True)
        total = sum(s.tasks_matched for s in res.server_stats)
        targeted = sum(s.tasks_matched_targeted for s in res.server_stats)
        assert 0 <= targeted <= total


class TestSessionTracing:
    def test_session_shares_trace_sink(self):
        cfg = RuntimeConfig.of(workers=2, trace=True)
        with SwiftRuntime.from_config(cfg) as rt:
            r1 = rt.run(SEQUENTIAL)
            n1 = len(r1.trace)
            r2 = rt.run(SEQUENTIAL)
            n2 = len(r2.trace)
        assert n2 > n1  # second snapshot contains both runs
        assert rt.trace is not None and len(rt.trace) >= n2
        # two run spans in the merged session trace
        assert len(rt.trace.spans("run")) == 2

    def test_session_compile_cache(self):
        calls = []
        import repro.api as api_mod

        orig = api_mod.compile_swift

        def counting(source, **kw):
            calls.append(source)
            return orig(source, **kw)

        with SwiftRuntime(workers=2) as rt:
            rt_compile = api_mod.compile_swift
            api_mod.compile_swift = counting
            try:
                rt.run(SEQUENTIAL)
                rt.run(SEQUENTIAL)
            finally:
                api_mod.compile_swift = rt_compile
        assert len(calls) == 1  # second run hit the cache
