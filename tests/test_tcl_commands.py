"""List, string, dict, and misc command ensembles."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcl import Interp, TclError


class TestListCommands:
    def test_list_quotes_specials(self, tcl):
        assert tcl.eval('list a "b c" {}') == "a {b c} {}"

    def test_lindex(self, tcl):
        assert tcl.eval("lindex {a b c} 1") == "b"
        assert tcl.eval("lindex {a b c} end") == "c"
        assert tcl.eval("lindex {a b c} end-1") == "b"
        assert tcl.eval("lindex {a b c} 99") == ""

    def test_lindex_nested(self, tcl):
        assert tcl.eval("lindex {{a b} {c d}} 1 0") == "c"

    def test_llength(self, tcl):
        assert tcl.eval("llength {a {b c} d}") == "3"

    def test_lappend_var(self, tcl):
        tcl.eval("set l {a}")
        assert tcl.eval('lappend l "b c" d') == "a {b c} d"

    def test_lrange(self, tcl):
        assert tcl.eval("lrange {a b c d e} 1 3") == "b c d"
        assert tcl.eval("lrange {a b c} 2 end") == "c"
        assert tcl.eval("lrange {a b c} 2 1") == ""

    def test_linsert(self, tcl):
        assert tcl.eval("linsert {a c} 1 b") == "a b c"
        assert tcl.eval("linsert {a b} end c") == "a b c"

    def test_lreplace(self, tcl):
        assert tcl.eval("lreplace {a b c d} 1 2 X Y Z") == "a X Y Z d"
        assert tcl.eval("lreplace {a b c} 1 1") == "a c"

    def test_lsearch(self, tcl):
        assert tcl.eval("lsearch {a b c} b") == "1"
        assert tcl.eval("lsearch {a b c} z") == "-1"
        assert tcl.eval("lsearch -glob {foo bar baz} ba*") == "1"
        assert tcl.eval("lsearch -all -glob {foo bar baz} ba*") == "1 2"
        assert tcl.eval("lsearch -exact {a* b} a*") == "0"

    def test_lsort(self, tcl):
        assert tcl.eval("lsort {b c a}") == "a b c"
        assert tcl.eval("lsort -integer {10 9 100}") == "9 10 100"
        assert tcl.eval("lsort -decreasing {a c b}") == "c b a"
        assert tcl.eval("lsort -unique {b a b}") == "a b"

    def test_lassign_returns_remainder(self, tcl):
        assert tcl.eval("lassign {1 2 3 4} a b") == "3 4"
        assert tcl.eval("list $a $b") == "1 2"

    def test_lassign_pads_missing(self, tcl):
        tcl.eval("lassign {1} a b")
        assert tcl.eval('list $a "$b"') == "1 {}"

    def test_lreverse_lrepeat(self, tcl):
        assert tcl.eval("lreverse {a b c}") == "c b a"
        assert tcl.eval("lrepeat 3 x y") == "x y x y x y"

    def test_concat(self, tcl):
        assert tcl.eval("concat {a b} {} {c}") == "a b c"

    def test_lmap(self, tcl):
        assert tcl.eval("lmap x {1 2 3} { expr {$x * $x} }") == "1 4 9"


class TestStringCommands:
    def test_length_index_range(self, tcl):
        assert tcl.eval("string length héllo") == "5"
        assert tcl.eval("string index hello 1") == "e"
        assert tcl.eval("string range hello 1 3") == "ell"
        assert tcl.eval("string range hello 3 end") == "lo"

    def test_case_ops(self, tcl):
        assert tcl.eval("string toupper aBc") == "ABC"
        assert tcl.eval("string tolower aBc") == "abc"
        assert tcl.eval("string totitle hello") == "Hello"

    def test_trim_family(self, tcl):
        assert tcl.eval('string trim "  x  "') == "x"
        assert tcl.eval("string trim xxayyxx x") == "ayy"
        assert tcl.eval('string trimleft "  x "') == "x "
        assert tcl.eval('string trimright " x  "') == " x"

    def test_equal_compare_match(self, tcl):
        assert tcl.eval("string equal a a") == "1"
        assert tcl.eval("string equal -nocase AB ab") == "1"
        assert tcl.eval("string compare a b") == "-1"
        assert tcl.eval("string match *.txt file.txt") == "1"
        assert tcl.eval("string match a?c abc") == "1"

    def test_first_last(self, tcl):
        assert tcl.eval("string first l hello") == "2"
        assert tcl.eval("string last l hello") == "3"
        assert tcl.eval("string first z hello") == "-1"

    def test_repeat_reverse_replace(self, tcl):
        assert tcl.eval("string repeat ab 3") == "ababab"
        assert tcl.eval("string reverse abc") == "cba"
        assert tcl.eval("string replace hello 1 3 XYZ") == "hXYZo"

    def test_map(self, tcl):
        assert tcl.eval("string map {a 1 b 2} abcab") == "12c12"

    def test_is_classes(self, tcl):
        assert tcl.eval("string is integer 42") == "1"
        assert tcl.eval("string is integer 4.2") == "0"
        assert tcl.eval("string is double 4.2") == "1"
        assert tcl.eval("string is alpha abc") == "1"
        assert tcl.eval("string is digit 123") == "1"

    def test_format(self, tcl):
        assert tcl.eval('format "%d-%s-%.2f" 42 x 3.14159') == "42-x-3.14"
        assert tcl.eval('format "%05d" 42') == "00042"
        assert tcl.eval('format "%x" 255') == "ff"
        assert tcl.eval('format "%%"') == "%"
        assert tcl.eval('format "%c" 65') == "A"

    def test_format_missing_args_raises(self, tcl):
        with pytest.raises(TclError):
            tcl.eval('format "%d %d" 1')

    def test_split_join(self, tcl):
        assert tcl.eval("split a,b,,c ,") == "a b {} c"
        assert tcl.eval("split abc {}") == "a b c"
        assert tcl.eval("join {a b c} -") == "a-b-c"

    def test_regexp(self, tcl):
        assert tcl.eval(r'regexp {\d+} "abc 123"') == "1"
        tcl.eval(r'regexp {(\d+)-(\d+)} "id 12-34" full a b')
        assert tcl.eval("list $full $a $b") == "12-34 12 34"
        assert tcl.eval(r'regexp -inline -all {\d+} "1 22 333"') == "1 22 333"

    def test_regsub(self, tcl):
        assert tcl.eval(r'regsub -all {\d} a1b2 X') == "aXbX"
        assert tcl.eval(r'regsub {(a+)} baaad <&>') == "b<aaa>d"


class TestDictCommands:
    def test_create_get(self, tcl):
        tcl.eval("set d [dict create a 1 b 2]")
        assert tcl.eval("dict get $d a") == "1"

    def test_set_preserves_order(self, tcl):
        tcl.eval("set d {}; dict set d k1 v1; dict set d k2 v2; dict set d k1 v9")
        assert tcl.eval("dict keys $d") == "k1 k2"
        assert tcl.eval("dict get $d k1") == "v9"

    def test_nested_get_set(self, tcl):
        tcl.eval("set d {}; dict set d outer inner 42")
        assert tcl.eval("dict get $d outer inner") == "42"

    def test_exists_unset(self, tcl):
        tcl.eval("set d [dict create a 1]")
        assert tcl.eval("dict exists $d a") == "1"
        assert tcl.eval("dict exists $d z") == "0"
        tcl.eval("dict unset d a")
        assert tcl.eval("dict exists $d a") == "0"

    def test_keys_values_size(self, tcl):
        tcl.eval("set d [dict create a 1 b 2 c 3]")
        assert tcl.eval("dict size $d") == "3"
        assert tcl.eval("dict values $d") == "1 2 3"
        assert tcl.eval("dict keys $d b*") == "b"

    def test_merge(self, tcl):
        assert tcl.eval("dict merge {a 1 b 2} {b 9 c 3}") == "a 1 b 9 c 3"

    def test_incr_lappend_append(self, tcl):
        tcl.eval("set d {}")
        tcl.eval("dict incr d hits; dict incr d hits 4")
        assert tcl.eval("dict get $d hits") == "5"
        tcl.eval("dict lappend d l x; dict lappend d l y")
        assert tcl.eval("dict get $d l") == "x y"
        tcl.eval("dict append d s ab; dict append d s cd")
        assert tcl.eval("dict get $d s") == "abcd"

    def test_for(self, tcl):
        tcl.eval(
            "set out {}; dict for {k v} {a 1 b 2} { lappend out $k=$v }"
        )
        assert tcl.eval("set out") == "a=1 b=2"

    def test_missing_key_raises(self, tcl):
        with pytest.raises(TclError):
            tcl.eval("dict get {a 1} z")

    def test_odd_dict_raises(self, tcl):
        with pytest.raises(TclError):
            tcl.eval("dict get {a 1 b} a")


class TestMiscCommands:
    def test_puts_captured(self, tcl):
        tcl.eval("puts hello")
        assert tcl.stdout == ["hello"]

    def test_info_commands_procs(self, tcl):
        tcl.eval("proc userproc {} {}")
        assert "userproc" in tcl.eval("info procs userproc")
        assert "set" in tcl.eval("info commands set")

    def test_info_args_body(self, tcl):
        tcl.eval("proc f {a b} { return $a$b }")
        assert tcl.eval("info args f") == "a b"
        assert "return" in tcl.eval("info body f")

    def test_info_level(self, tcl):
        tcl.eval("proc depth {} { info level }")
        assert tcl.eval("depth") == "1"

    def test_clock_monotonicity(self, tcl):
        t1 = int(tcl.eval("clock microseconds"))
        t2 = int(tcl.eval("clock microseconds"))
        assert t2 >= t1

    def test_time_command(self, tcl):
        out = tcl.eval("time {set x 1} 5")
        assert "microseconds per iteration" in out


# property: lsort -integer agrees with Python sorting
@given(st.lists(st.integers(min_value=-10_000, max_value=10_000), max_size=20))
@settings(max_examples=150, deadline=None)
def test_property_lsort_matches_python(values):
    tcl = Interp()
    tcl.echo = False
    joined = " ".join(str(v) for v in values)
    got = tcl.eval("lsort -integer {%s}" % joined)
    want = " ".join(str(v) for v in sorted(values))
    assert got == want
