"""Tcl list parsing/formatting, including property-based round trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcl.listutil import format_element, format_list, parse_list


class TestParseList:
    def test_empty(self):
        assert parse_list("") == []
        assert parse_list("   \t\n ") == []

    def test_simple_words(self):
        assert parse_list("a b c") == ["a", "b", "c"]

    def test_extra_whitespace(self):
        assert parse_list("  a\t\tb \n c ") == ["a", "b", "c"]

    def test_braced_element(self):
        assert parse_list("a {b c} d") == ["a", "b c", "d"]

    def test_nested_braces(self):
        assert parse_list("{a {b c}} d") == ["a {b c}", "d"]

    def test_quoted_element(self):
        assert parse_list('a "b c" d') == ["a", "b c", "d"]

    def test_quoted_with_escape(self):
        assert parse_list(r'"a\tb"') == ["a\tb"]

    def test_bare_backslash_escape(self):
        assert parse_list(r"a\ b") == ["a b"]

    def test_empty_braced(self):
        assert parse_list("{} a") == ["", "a"]

    def test_unbalanced_brace_raises(self):
        with pytest.raises(ValueError):
            parse_list("{a b")

    def test_unterminated_quote_raises(self):
        with pytest.raises(ValueError):
            parse_list('"abc')

    def test_brace_followed_by_text_raises(self):
        with pytest.raises(ValueError):
            parse_list("{a}b")

    def test_backslash_inside_braces_preserved(self):
        assert parse_list(r"{a\nb}") == [r"a\nb"]


class TestFormatElement:
    def test_plain(self):
        assert format_element("abc") == "abc"

    def test_empty(self):
        assert format_element("") == "{}"

    def test_space(self):
        assert format_element("a b") == "{a b}"

    def test_dollar_braced(self):
        assert format_element("$x") == "{$x}"

    def test_unbalanced_brace_backslashed(self):
        out = format_element("a{b")
        assert parse_list(out) == ["a{b"]

    def test_trailing_backslash(self):
        out = format_element("a\\")
        assert parse_list(out) == ["a\\"]


class TestFormatList:
    def test_round_trip_simple(self):
        items = ["a", "b c", "", "{x}", "$v", "[cmd]"]
        assert parse_list(format_list(items)) == items

    def test_nested_list(self):
        inner = format_list(["1", "2 3"])
        outer = format_list(["head", inner])
        parsed = parse_list(outer)
        assert parsed[0] == "head"
        assert parse_list(parsed[1]) == ["1", "2 3"]


# printable text without NUL; Tcl lists cannot contain NUL cleanly
_element = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\x00"),
    max_size=30,
)


@given(st.lists(_element, max_size=12))
@settings(max_examples=300, deadline=None)
def test_property_round_trip(items):
    assert parse_list(format_list(items)) == items


@given(st.lists(_element, max_size=8))
@settings(max_examples=150, deadline=None)
def test_property_double_format_stable(items):
    once = format_list(items)
    twice = format_list(parse_list(once))
    assert parse_list(twice) == items
