"""The shipped examples run end to end and produce their key output."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "sum of squares 0..9 = 285" in out
    assert "python says 10! = 3628800" in out
    assert "R says mean = 5" in out
    assert "hello from a subprocess" in out


def test_materials_sweep():
    out = run_example("materials_sweep.py")
    assert "minimum energy per atom: -" in out
    assert "native kernel called 21 times" in out


def test_protein_pipeline():
    out = run_example("protein_pipeline.py")
    assert "peptides scored" in out
    assert "per-worker task counts" in out
    # every peptide produced a verdict
    assert out.count("(score") == 24


def test_powergrid_contingency():
    out = run_example("powergrid_contingency.py")
    assert "contingency sweep: worst =" in out
    assert "12 contingencies solved by the Fortran kernel" in out


def test_fixpoint_labels():
    out = run_example("fixpoint_labels.py")
    assert "components: 3" in out
    for node, root in enumerate([0, 0, 0, 3, 3, 3, 3, 7, 7]):
        assert "node %d -> root %d" % (node, root) in out
    assert "leaf tasks" in out


def test_deploy_static_package():
    out = run_example("deploy_static_package.py")
    assert "loose files :  30 opens/rank" in out
    assert "static pkg  :   1 opens/rank" in out
    assert "warming trend:" in out
    assert "#SBATCH --nodes=512" in out
    assert "#COBALT -n 512" in out
