"""The chaos harness: schedule generation, run-invariant auditing,
trial classification, ddmin shrinking, and repro-artifact replay."""

from __future__ import annotations

import json
import os

import pytest

from repro import FaultPlan, swift_run
from repro.adlb.layout import Layout
from repro.chaos import (
    INTENSITIES,
    audit_run,
    compare_outputs,
    generate_plan,
    load_fault_plan,
    shrink_plan,
)
from repro.chaos.runner import Workload, golden_run, run_trial

SEED = int(os.environ.get("FAULT_SEED", "0"))

FANOUT = """
foreach i in [0:9] {
    string s = python(strcat("x=", fromint(i)), "x");
    trace(s);
}
"""


def layout(workers=4, servers=2, engines=2) -> Layout:
    return Layout(workers + servers + engines, servers, engines)


# ---------------------------------------------------------------- schedule


class TestSchedule:
    def test_deterministic_per_seed_and_intensity(self):
        lay = layout()
        a = generate_plan(lay, seed=SEED + 7, intensity="medium")
        b = generate_plan(lay, seed=SEED + 7, intensity="medium")
        assert a.to_dict() == b.to_dict()
        c = generate_plan(lay, seed=SEED + 7, intensity="brutal")
        assert c.to_dict() != a.to_dict()

    def test_seeds_explore_distinct_plans(self):
        lay = layout()
        plans = {
            json.dumps(generate_plan(lay, seed=s, intensity="medium").to_dict())
            for s in range(20)
        }
        assert len(plans) > 10

    def test_survivability_envelope(self):
        lay = layout(workers=4, servers=2, engines=2)
        for s in range(60):
            plan = generate_plan(lay, seed=s, intensity="brutal")
            killed = {k.rank for k in plan.kills}
            assert len(killed & set(lay.workers)) < len(lay.workers)
            assert len(killed & set(lay.engines)) < lay.n_engines
            assert len(killed & set(lay.servers)) < lay.n_servers
            for rule in plan.msg_rules:
                if rule.kind == "drop":
                    # Only the reliable-RPC tags are recoverable.
                    assert rule.tag in (10, 11)
                    assert rule.times is not None
            raise_rules = [r for r in plan.task_rules if r.kind == "raise"]
            for rule in raise_rules:
                # Engine LOCAL rule bodies are not retryable, so every
                # injected transient must be pinned to a worker rank.
                assert rule.rank in lay.workers
                assert rule.times == 1
            # Even if every injection lands on retries of one task the
            # attempt allowance (1 + max_retries) absorbs them.
            assert len(raise_rules) <= 3
            if plan.poison_rules:
                # Poison may kill an engine (LOCAL rule fires count as
                # units); combined with an engine kill that could leave
                # no adopter, so the generator never emits both.
                assert not killed & set(lay.engines)

    def test_solo_roles_are_never_killed(self):
        lay = layout(workers=1, servers=1, engines=1)
        for s in range(40):
            plan = generate_plan(lay, seed=s, intensity="brutal")
            assert not plan.kills
            assert not plan.poison_rules  # needs >= 2 engines

    def test_unknown_intensity_rejected(self):
        with pytest.raises(ValueError, match="intensity"):
            generate_plan(layout(), seed=0, intensity="apocalyptic")

    def test_intensity_registry_levels(self):
        assert set(INTENSITIES) == {"light", "medium", "brutal"}


# --------------------------------------------------------------- invariants


def server_row(rank=5, **kw) -> dict:
    row = {
        "role": "server",
        "rank": rank,
        "is_master": True,
        "work_started": True,
        "work_count": 0,
        "poisoned": False,
        "queued_tasks": 0,
        "delayed_tasks": 0,
        "parked_gets": 0,
        "leases": {},
        "journal_pending": {},
        "dedup_slots": {},
        "dead_ranks": [],
        "attached_clients": 3,
        "failures": 0,
        "quarantined": 0,
    }
    row.update(kw)
    return row


def client_row(role, rank, **kw) -> dict:
    row = {
        "role": role,
        "rank": rank,
        "pending_refcounts": 0,
        "failures": 0,
    }
    if role == "engine":
        row.update(pending_rules=0, unflushed_journal=0)
    row.update(kw)
    return row


class TestInvariants:
    # Rows model workers=2 servers=1 engines=1: ranks 0=engine,
    # 1-2=workers, 3=server/master.
    def rows(self, **server_kw):
        return [
            client_row("engine", 0),
            client_row("worker", 1),
            client_row("worker", 2),
            server_row(rank=3, **server_kw),
        ]

    def lay(self):
        return Layout(4, 1, 1)

    def test_clean_rows_pass(self):
        audit = audit_run(self.rows(), layout=self.lay())
        assert audit.ok
        assert audit.missing_ranks == []
        assert "0 violation(s)" in audit.render()

    def test_counter_leak_flagged_and_drain_exempts(self):
        audit = audit_run(self.rows(work_count=2), layout=self.lay())
        assert any("not conserved" in v for v in audit.violations)
        # A poisoned drain legitimately strands blocked units...
        failures = [object()]
        rows = self.rows(work_count=2, poisoned=True)
        rows[0]["failures"] = 1
        audit = audit_run(rows, layout=self.lay(), failures=failures)
        assert audit.ok
        # ...but a negative counter is always an accounting bug.
        audit = audit_run(self.rows(work_count=-1), layout=self.lay())
        assert any("negative" in v for v in audit.violations)

    def test_leaked_lease_flagged(self):
        audit = audit_run(
            self.rows(leases={1: "W1.4"}), layout=self.lay()
        )
        assert any("leaked lease" in v for v in audit.violations)

    def test_queued_work_at_shutdown_flagged(self):
        audit = audit_run(self.rows(queued_tasks=2), layout=self.lay())
        assert any("still queued" in v for v in audit.violations)

    def test_journal_mirror_leaks(self):
        # Live engine's mirror pending at quiescence: leak.
        audit = audit_run(
            self.rows(journal_pending={0: 1}), layout=self.lay()
        )
        assert any("live engine 0" in v for v in audit.violations)
        # Dead engine's mirror: adoption should have popped it.
        rows = [
            client_row("worker", 1),
            client_row("worker", 2),
            server_row(rank=3, journal_pending={0: 3}, dead_ranks=[0]),
        ]
        audit = audit_run(rows, layout=self.lay())
        assert any("adoption never popped" in v for v in audit.violations)
        assert audit.missing_ranks == [0]

    def test_unflushed_client_state_flagged(self):
        rows = self.rows()
        rows[0]["pending_refcounts"] = 2
        rows[0]["unflushed_journal"] = 1
        audit = audit_run(rows, layout=self.lay())
        assert any("unflushed refcount" in v for v in audit.violations)
        assert any("unflushed journal" in v for v in audit.violations)

    def test_dedup_slots_bounded_by_clients(self):
        audit = audit_run(
            self.rows(dedup_slots={"rpc": 9}), layout=self.lay()
        )
        assert any("dedup slots" in v for v in audit.violations)
        audit = audit_run(
            self.rows(dedup_slots={"rpc": 3}), layout=self.lay()
        )
        assert audit.ok

    def test_accounting_cross_check(self):
        # The run surfaced a failure no rank recorded.
        audit = audit_run(
            self.rows(), layout=self.lay(), failures=[object()]
        )
        assert any("accounting mismatch" in v for v in audit.violations)

    def test_role_mismatch_flagged(self):
        rows = self.rows()
        rows[0]["role"] = "worker"  # rank 0 is an engine in the layout
        audit = audit_run(rows, layout=self.lay())
        assert any("reported role" in v for v in audit.violations)


class TestCompareOutputs:
    def test_identical_modulo_order(self):
        assert compare_outputs(["a", "b"], ["b", "a"]) == []

    def test_missing_and_extra_lines(self):
        got = compare_outputs(["a", "b", "b"], ["a", "b", "c"])
        assert any("missing line: 'b'" in v for v in got)
        assert any("extra line: 'c'" in v for v in got)

    def test_ordered_mode_flags_reordering(self):
        got = compare_outputs(["a", "b"], ["b", "a"], ordered=True)
        assert got == ["output line order diverged from golden run"]


# ------------------------------------------------------------- audit e2e


class TestAuditEndToEnd:
    def test_clean_run_audits_ok(self):
        res = swift_run(
            FANOUT, workers=2, servers=2, engines=2, audit=True
        )
        assert res.audit is not None and res.audit.ok
        assert len(res.audit.rows) == 6  # every rank reported
        assert res.audit.missing_ranks == []

    def test_audit_off_by_default(self):
        res = swift_run(FANOUT, workers=2)
        assert res.audit is None

    def test_audit_with_worker_kill(self):
        plan = FaultPlan(seed=SEED).kill_rank(2, after_tasks=1)
        res = swift_run(
            FANOUT,
            workers=3,
            servers=2,
            engines=2,
            audit=True,
            faults=plan,
        )
        assert res.ok
        assert res.audit is not None and res.audit.ok
        assert res.audit.missing_ranks == [2]  # the killed worker

    def test_regression_final_rule_journal_flush_race(self):
        # Found by the chaos audit: the engine's last "done" journal
        # entry is flushed *after* the decr_work that zeroes the
        # termination counter, and parked clients are acked without a
        # round trip — so servers could exit with the final OP_JOURNAL
        # still in their mailbox, leaving the dead rule mirrored
        # (server.py _journal_sweep is the fix).  The fault plan's kill
        # never fires (rank 3 is a worker that sees no 2nd task after
        # the fanout drains); its presence just arms journaling+leases.
        plan = FaultPlan(seed=11).kill_rank(3, after_tasks=1)
        for _ in range(3):
            res = swift_run(
                "foreach i in [0:9] {\n"
                '    string o = python(strcat("x = ", fromint(i), " * 3"), "x");\n'
                '    printf("t %s", o);\n'
                "}\n",
                workers=3,
                servers=2,
                engines=2,
                audit=True,
                faults=plan,
                on_error="retry",
                max_retries=3,
                lease_timeout=1.0,
            )
            assert res.audit is not None
            assert res.audit.ok, res.audit.render()


# ------------------------------------------------------------------ trials


class TestTrials:
    WL = Workload(
        name="fanout", program=FANOUT, workers=3, servers=2, engines=2
    )

    def test_golden_then_clean_trial(self):
        golden = golden_run(self.WL)
        trial = run_trial(
            self.WL, FaultPlan(seed=SEED), golden, seed=SEED, deadline=60.0
        )
        assert trial.outcome == "clean", trial
        assert trial.violations == []

    def test_tolerated_trial_with_injections(self):
        golden = golden_run(self.WL)
        plan = (
            FaultPlan(seed=SEED)
            .fail_task("python", times=1)
            .kill_rank(2, after_tasks=1)
        )
        trial = run_trial(self.WL, plan, golden, seed=SEED, deadline=60.0)
        assert trial.outcome == "tolerated", trial
        assert "output identical" in trial.detail

    def test_hang_caught_by_deadline(self):
        golden = golden_run(self.WL)
        # Dropping async notifications wedges the dataflow by design;
        # the armed deadline must classify it, not hang the suite.
        plan = FaultPlan(seed=SEED).drop_messages(tag=13, times=100)
        trial = run_trial(self.WL, plan, golden, seed=SEED, deadline=1.5)
        assert trial.outcome == "hang", trial


# ---------------------------------------------------------------- shrinking


class TestShrink:
    def plan(self) -> FaultPlan:
        return (
            FaultPlan(seed=3)
            .kill_rank(2, after_tasks=1)
            .kill_rank(4, after_tasks=2, silent=True)
            .fail_task("python", times=1)
            .slow_task("python", delay=0.01, times=2)
            .drop_messages(tag=10, times=2)
            .delay_messages(delay=0.005, times=3)
        )

    def test_shrinks_to_single_culprit(self):
        runs = []

        def still_fails(candidate: FaultPlan) -> bool:
            runs.append(candidate.rule_count())
            # The "bug" reproduces iff the silent kill is present.
            return any(k.rank == 4 and k.silent for k in candidate.kills)

        shrunk, spent = shrink_plan(self.plan(), still_fails)
        assert shrunk.rule_count() == 1
        assert shrunk.kills[0].rank == 4 and shrunk.kills[0].silent
        assert spent == len(runs) <= 32

    def test_shrink_respects_run_budget(self):
        def never_smaller(candidate: FaultPlan) -> bool:
            return candidate.rule_count() == 6  # only the full plan fails

        shrunk, spent = shrink_plan(self.plan(), never_smaller, max_runs=9)
        assert spent <= 9
        assert shrunk.rule_count() == 6

    def test_two_rule_interaction_kept_together(self):
        def still_fails(candidate: FaultPlan) -> bool:
            # Needs the pair: a kill AND the drop rule.
            return bool(candidate.kills) and any(
                r.kind == "drop" for r in candidate.msg_rules
            )

        shrunk, _ = shrink_plan(self.plan(), still_fails)
        assert shrunk.rule_count() == 2


# ------------------------------------------------------------ repro replay


class TestReproArtifacts:
    def test_load_bare_plan_and_artifact(self, tmp_path):
        plan = FaultPlan(seed=9).fail_task("python", times=1)
        bare = tmp_path / "plan.json"
        bare.write_text(json.dumps(plan.to_dict()))
        assert load_fault_plan(bare).to_dict() == plan.to_dict()
        artifact = tmp_path / "repro.json"
        artifact.write_text(
            json.dumps({"workload": "w", "plan": plan.to_dict()})
        )
        assert load_fault_plan(artifact).to_dict() == plan.to_dict()

    def test_cli_replays_fault_plan_with_audit(self, tmp_path):
        from repro.cli import main

        plan = FaultPlan(seed=SEED).fail_task("python", times=1)
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan.to_dict()))
        src = tmp_path / "t.swift"
        src.write_text(FANOUT)
        status = main(
            [
                "run",
                str(src),
                "--workers",
                "2",
                "--audit",
                "--fault-plan",
                str(plan_path),
            ]
        )
        assert status == 0

    def test_cli_chaos_list(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fixpoint_labels" in out


# ----------------------------------------------------------------- campaign


class TestCampaign:
    def test_small_campaign_over_fixpoint(self, tmp_path):
        from repro.chaos import run_chaos

        report = run_chaos(
            workload_names=["fixpoint_labels"],
            trials=2,
            intensity="light",
            seed=SEED,
            deadline=60.0,
            out_dir=tmp_path,
        )
        assert report.ok, report.render()
        assert len(report.trials) == 2
        assert all(
            t.outcome in ("clean", "tolerated") for t in report.trials
        )
        summary = json.loads((tmp_path / "report.json").read_text())
        assert summary["trials_per_workload"] == 2
        assert sum(summary["counts"].values()) == 2
