"""Embedded Python/R leaf interpreters, shell, and their Tcl bindings."""

from __future__ import annotations

import sys

import pytest

from repro.interlang import (
    EmbeddedPython,
    EmbeddedR,
    PythonTaskError,
    RTaskError,
    ShellTaskError,
    python_exec_baseline,
    register_python,
    register_r,
    register_shell,
    run_command,
    run_line,
)
from repro.tcl import Interp, TclError


class TestEmbeddedPython:
    def test_eval_code_and_expr(self):
        emb = EmbeddedPython()
        assert emb.eval("x = 6 * 7", "x") == "42"

    def test_expr_only(self):
        emb = EmbeddedPython()
        assert emb.eval("", "1 + 1") == "2"

    def test_retain_keeps_state(self):
        emb = EmbeddedPython(mode="retain")
        emb.eval("counter = 10", "")
        assert emb.eval("counter += 1", "counter") == "11"
        assert emb.init_count == 1

    def test_reinit_clears_state(self):
        emb = EmbeddedPython(mode="reinit")
        emb.eval("leak = 1", "")
        with pytest.raises(PythonTaskError, match="NameError"):
            emb.eval("", "leak")
        assert emb.init_count >= 3  # initial + one per task

    def test_preamble_runs_on_init(self):
        emb = EmbeddedPython(mode="reinit", preamble="import math")
        assert emb.eval("", "math.floor(2.5)") == "2"

    def test_explicit_reset(self):
        emb = EmbeddedPython()
        emb.eval("x = 1", "")
        emb.reset()
        with pytest.raises(PythonTaskError):
            emb.eval("", "x")

    def test_result_conversion(self):
        emb = EmbeddedPython()
        assert emb.eval("", "None") == ""
        assert emb.eval("", "True") == "1"
        assert emb.eval("", "[1, 2, 3]") == "1 2 3"
        assert emb.eval("", "2.5") == "2.5"

    def test_print_captured(self):
        emb = EmbeddedPython()
        emb.eval("print('from task')", "")
        assert emb.stdout == ["from task"]

    def test_exception_wrapped(self):
        emb = EmbeddedPython()
        with pytest.raises(PythonTaskError, match="ZeroDivisionError"):
            emb.eval("", "1 / 0")

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            EmbeddedPython(mode="whatever")

    def test_host_get_set(self):
        emb = EmbeddedPython()
        emb.set("injected", 99)
        assert emb.eval("", "injected + 1") == "100"
        assert emb.get("injected") == 99


class TestEmbeddedR:
    def test_eval(self):
        emb = EmbeddedR()
        assert emb.eval("y <- sum(1:10)", "y") == "55"

    def test_retain_vs_reinit(self):
        retain = EmbeddedR(mode="retain")
        retain.eval("cache <- 5", "")
        assert retain.eval("", "cache") == "5"
        reinit = EmbeddedR(mode="reinit")
        reinit.eval("cache <- 5", "")
        with pytest.raises(RTaskError):
            reinit.eval("", "cache")

    def test_preamble(self):
        emb = EmbeddedR(preamble="helper <- function(x) x * 3")
        assert emb.eval("", "helper(7)") == "21"

    def test_error_wrapped(self):
        emb = EmbeddedR()
        with pytest.raises(RTaskError):
            emb.eval("stop('nope')", "")

    def test_cat_output_collected(self):
        emb = EmbeddedR()
        emb.eval("cat('hi')", "")
        assert emb.stdout == ["hi"]


class TestShell:
    def test_run_command(self):
        assert run_command(["echo", "hello"]) == "hello"

    def test_run_line_with_quoting(self):
        assert run_line('echo "two words"') == "two words"

    def test_missing_command_raises(self):
        with pytest.raises(ShellTaskError, match="not found"):
            run_command(["definitely_not_a_command_xyz"])

    def test_nonzero_exit_raises(self):
        with pytest.raises(ShellTaskError, match="failed"):
            run_command([sys.executable, "-c", "import sys; sys.exit(3)"])

    def test_python_exec_baseline(self):
        assert python_exec_baseline("x = 2 + 2", "x") == "4"


class TestTclBindings:
    @pytest.fixture()
    def tcl(self):
        it = Interp()
        it.echo = False
        register_python(it)
        register_r(it)
        register_shell(it)
        return it

    def test_python_eval_command(self, tcl):
        assert tcl.eval('python::eval {x = 21 * 2} {x}') == "42"

    def test_python_error_becomes_tcl_error(self, tcl):
        with pytest.raises(TclError, match="python task failed"):
            tcl.eval('python::eval {} {undefined_name}')

    def test_python_persist_survives(self, tcl):
        tcl.eval('python::persist {state = 7} {}')
        assert tcl.eval('python::persist {} {state}') == "7"

    def test_python_reset_command(self, tcl):
        tcl.eval('python::eval {z = 1} {}')
        tcl.eval('python::reset')
        with pytest.raises(TclError):
            tcl.eval('python::eval {} {z}')

    def test_python_stats(self, tcl):
        tcl.eval('python::eval {} {1}')
        assert "tasks" in tcl.eval("python::stats")

    def test_r_eval_command(self, tcl):
        assert tcl.eval('r::eval {v <- c(1,2,3)} {sum(v)}') == "6"

    def test_r_error_becomes_tcl_error(self, tcl):
        with pytest.raises(TclError, match="R task failed"):
            tcl.eval('r::eval {stop("x")} {}')

    def test_shell_exec(self, tcl):
        assert tcl.eval("shell::exec echo ok") == "ok"

    def test_shell_error(self, tcl):
        with pytest.raises(TclError):
            tcl.eval("shell::exec false")

    def test_packages_provided(self, tcl):
        assert tcl.eval("package require python") == "1.0"
        assert tcl.eval("package require r") == "1.0"
        assert tcl.eval("package require shell") == "1.0"

    def test_reinit_mode_through_bindings(self):
        it = Interp()
        it.echo = False
        register_python(it, mode="reinit")
        it.eval('python::eval {tmp = 5} {}')
        with pytest.raises(TclError):
            it.eval('python::eval {} {tmp}')
