"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.tcl import Interp


@pytest.fixture()
def tcl() -> Interp:
    it = Interp()
    it.echo = False
    return it


def run_swift(src: str, workers: int = 3, **kw) -> list[str]:
    """Compile + run a Swift program; return sorted output lines."""
    from repro import swift_run

    res = swift_run(src, workers=workers, **kw)
    return sorted(res.stdout_lines)
