"""The Tcl expr sublanguage, checked against Python reference semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcl import Interp, TclError


@pytest.fixture()
def tcl():
    it = Interp()
    it.echo = False
    return it


def ev(tcl, expression: str) -> str:
    return tcl.eval("expr {%s}" % expression)


class TestArithmetic:
    def test_precedence(self, tcl):
        assert ev(tcl, "2 + 3 * 4") == "14"

    def test_parens(self, tcl):
        assert ev(tcl, "(2 + 3) * 4") == "20"

    def test_power_right_assoc(self, tcl):
        assert ev(tcl, "2 ** 3 ** 2") == "512"

    def test_unary_minus(self, tcl):
        assert ev(tcl, "-3 + 10") == "7"

    def test_int_division_floors(self, tcl):
        assert ev(tcl, "-7 / 2") == "-4"
        assert ev(tcl, "7 / 2") == "3"

    def test_mod_sign_of_divisor(self, tcl):
        assert ev(tcl, "-7 % 3") == "2"
        assert ev(tcl, "7 % -3") == "-2"

    def test_float_division(self, tcl):
        assert ev(tcl, "7.0 / 2") == "3.5"

    def test_divide_by_zero(self, tcl):
        with pytest.raises(TclError):
            ev(tcl, "1 / 0")

    def test_hex_and_binary_literals(self, tcl):
        assert ev(tcl, "0xff + 0b101") == "260"

    def test_float_formatting_whole(self, tcl):
        assert ev(tcl, "1.5 + 0.5") == "2.0"

    def test_scientific_notation(self, tcl):
        assert ev(tcl, "1e3 + 1") == "1001.0"


class TestComparisonLogic:
    def test_numeric_comparison(self, tcl):
        assert ev(tcl, "3 < 12") == "1"

    def test_string_comparison_via_eq(self, tcl):
        assert ev(tcl, '"abc" eq "abc"') == "1"
        assert ev(tcl, '"abc" ne "abd"') == "1"

    def test_equality_numeric_coercion(self, tcl):
        assert ev(tcl, '"3" == "3.0"') == "1"

    def test_in_operator(self, tcl):
        assert ev(tcl, '"b" in {a b c}') == "1"
        assert ev(tcl, '"z" ni {a b c}') == "1"

    def test_logical_short_circuit(self, tcl):
        tcl.eval("proc boom {} { error nope }")
        assert ev(tcl, "0 && [boom]") == "0"
        assert ev(tcl, "1 || [boom]") == "1"

    def test_ternary(self, tcl):
        assert ev(tcl, "1 < 2 ? 10 : 20") == "10"
        assert ev(tcl, "1 > 2 ? 10 : 20") == "20"

    def test_not(self, tcl):
        assert ev(tcl, "!0") == "1"
        assert ev(tcl, "!3") == "0"

    def test_bitwise(self, tcl):
        assert ev(tcl, "6 & 3") == "2"
        assert ev(tcl, "6 | 3") == "7"
        assert ev(tcl, "6 ^ 3") == "5"
        assert ev(tcl, "1 << 4") == "16"
        assert ev(tcl, "~0") == "-1"

    def test_boolean_words(self, tcl):
        assert ev(tcl, "true && !false") == "1"


class TestSubstitution:
    def test_variable(self, tcl):
        tcl.eval("set x 9")
        assert ev(tcl, "$x * 2") == "18"

    def test_command(self, tcl):
        assert ev(tcl, "[string length hello] + 1") == "6"

    def test_nested_expr(self, tcl):
        assert ev(tcl, "[expr {1 + 2}] * 3") == "9"

    def test_missing_variable_raises(self, tcl):
        with pytest.raises(TclError):
            ev(tcl, "$nosuchvar + 1")


class TestMathFunctions:
    def test_sqrt(self, tcl):
        assert ev(tcl, "sqrt(16)") == "4.0"

    def test_min_max(self, tcl):
        assert ev(tcl, "min(3, 1, 2)") == "1"
        assert ev(tcl, "max(3, 1, 2)") == "3"

    def test_int_truncates(self, tcl):
        assert ev(tcl, "int(3.9)") == "3"
        assert ev(tcl, "int(-3.9)") == "-3"

    def test_double(self, tcl):
        assert ev(tcl, "double(3)") == "3.0"

    def test_round(self, tcl):
        assert ev(tcl, "round(2.5)") == "2"
        assert ev(tcl, "round(3.6)") == "4"

    def test_abs(self, tcl):
        assert ev(tcl, "abs(-4)") == "4"

    def test_pow(self, tcl):
        assert ev(tcl, "pow(2, 10)") == "1024.0"

    def test_unknown_function(self, tcl):
        with pytest.raises(TclError):
            ev(tcl, "frobnicate(1)")

    def test_domain_error(self, tcl):
        with pytest.raises(TclError):
            ev(tcl, "sqrt(-1)")


class TestErrors:
    def test_unbalanced_paren(self, tcl):
        with pytest.raises(TclError):
            ev(tcl, "(1 + 2")

    def test_trailing_garbage(self, tcl):
        with pytest.raises(TclError):
            ev(tcl, "1 + 2 3")

    def test_bareword(self, tcl):
        with pytest.raises(TclError):
            ev(tcl, "hello + 1")

    def test_non_numeric_operand(self, tcl):
        with pytest.raises(TclError):
            ev(tcl, '"abc" + 1')


# --- property tests against Python semantics ------------------------------

_small_ints = st.integers(min_value=-1000, max_value=1000)


@given(_small_ints, _small_ints)
@settings(max_examples=200, deadline=None)
def test_property_int_add_sub_mul(a, b):
    tcl = Interp()
    tcl.echo = False
    assert tcl.eval("expr {%d + %d}" % (a, b)) == str(a + b)
    assert tcl.eval("expr {%d - %d}" % (a, b)) == str(a - b)
    assert tcl.eval("expr {%d * %d}" % (a, b)) == str(a * b)


@given(_small_ints, _small_ints.filter(lambda x: x != 0))
@settings(max_examples=200, deadline=None)
def test_property_int_div_mod_match_python_floor(a, b):
    tcl = Interp()
    tcl.echo = False
    assert tcl.eval("expr {%d / %d}" % (a, b)) == str(a // b)
    assert tcl.eval("expr {%d %% %d}" % (a, b)) == str(a % b)


@given(_small_ints, _small_ints)
@settings(max_examples=200, deadline=None)
def test_property_comparisons_match_python(a, b):
    tcl = Interp()
    tcl.echo = False
    for op in ("<", ">", "<=", ">=", "==", "!="):
        want = {"<": a < b, ">": a > b, "<=": a <= b,
                ">=": a >= b, "==": a == b, "!=": a != b}[op]
        got = tcl.eval("expr {%d %s %d}" % (a, op, b))
        assert got == ("1" if want else "0")
