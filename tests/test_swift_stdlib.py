"""Swift standard-library intrinsics, end to end."""

from __future__ import annotations

import pytest

from repro import swift_run
from repro.faults import TaskError
from repro.mpi.launcher import RankFailure


def run(src: str, **kw) -> list[str]:
    return sorted(swift_run(src, workers=kw.pop("workers", 3), **kw).stdout_lines)


class TestStringIntrinsics:
    def test_substring(self):
        assert run('printf("%s", substring("abcdef", 1, 3));') == ["bcd"]

    def test_substring_clamps(self):
        assert run('printf("[%s]", substring("ab", 1, 99));') == ["[b]"]

    def test_find_present_and_absent(self):
        out = run(
            'printf("%i %i", find("hello world", "wor"), find("hello", "zz"));'
        )
        assert out == ["6 -1"]

    def test_replace_all(self):
        assert run('printf("%s", replace_all("aXbXc", "X", "--"));') == ["a--b--c"]

    def test_case_and_trim(self):
        out = run(
            'printf("%s|%s|%s", toupper("mIx"), tolower("mIx"), trim("  p "));'
        )
        assert out == ["MIX|mix|p"]

    def test_split_produces_array(self):
        out = run(
            'string p[] = split("a,b,c,d", ",");\n'
            'printf("%i %s %s", size(p), p[0], p[3]);'
        )
        assert out == ["4 a d"]

    def test_split_empty_fields(self):
        out = run(
            'string p[] = split("x,,y", ",");\n'
            'printf("%i [%s]", size(p), p[1]);'
        )
        assert out == ["3 []"]

    def test_join_ordered_by_subscript(self):
        out = run(
            "string p[];\n"
            'p[2] = "c"; p[0] = "a"; p[1] = "b";\n'
            'printf("%s", join(p, "-"));'
        )
        assert out == ["a-b-c"]

    def test_join_empty_array(self):
        out = run('string p[];\nprintf("[%s]", join(p, "-"));')
        assert out == ["[]"]

    def test_split_join_round_trip(self):
        out = run(
            'string s = "q/w/e/r";\n'
            'printf("%s", join(split(s, "/"), "/"));'
        )
        assert out == ["q/w/e/r"]

    def test_split_feeds_foreach(self):
        out = run(
            'foreach w in split("one two three", " ") {\n'
            '  printf("w=%s", w);\n'
            "}"
        )
        assert out == ["w=one", "w=three", "w=two"]


class TestArgv:
    def test_argv_with_value(self):
        out = run('printf("%s", argv("name"));', args={"name": "zed"})
        assert out == ["zed"]

    def test_argv_default_used(self):
        assert run('printf("%s", argv("name", "fallback"));') == ["fallback"]

    def test_argv_value_overrides_default(self):
        out = run(
            'printf("%s", argv("name", "fallback"));', args={"name": "given"}
        )
        assert out == ["given"]

    def test_argv_int(self):
        out = run(
            'printf("%i", argv_int("n") * 2);', args={"n": "21"}
        )
        assert out == ["42"]

    def test_argv_int_default(self):
        assert run('printf("%i", argv_int("n", 7));') == ["7"]

    def test_argv_missing_no_default_fails(self):
        with pytest.raises(TaskError, match="missing program argument"):
            swift_run('printf("%s", argv("required"));', workers=2)

    def test_args_visible_on_workers(self):
        # argv evaluated in a leaf python task via strcat plumbing
        out = run(
            'string s = python(strcat("x = ", argv("n"), " * 2"), "x");\n'
            'printf("%s", s);',
            args={"n": "8"},
        )
        assert out == ["16"]


class TestReductions:
    def test_min_max_float(self):
        out = run(
            "float f[];\n"
            "f[0] = 2.5; f[1] = 0.5; f[2] = 9.5;\n"
            'printf("%s %s", fromfloat(min_float(f)), fromfloat(max_float(f)));'
        )
        assert out == ["0.5 9.5"]

    def test_sum_empty_integer_array_is_zero(self):
        assert run("int a[];\nprintf(\"%i\", sum_integer(a));") == ["0"]


class TestPriorityAnnotation:
    def test_prio_orders_queued_tasks(self):
        from repro import swift_run

        src = """
(string o) emit(string tag, int delay_ms) "python" "1.0" [
    "set code [ string map [ list D <<delay_ms>> ] {import time; time.sleep(D / 1000.0)} ]
     python::eval $code {}
     set <<o>> <<tag>>"
];
string gate = emit("gate", 100);
printf("G %s", gate);
@prio=1 string low = emit("low", 1);
@prio=9 string high = emit("high", 1);
printf("L %s", low);
printf("H %s", high);
"""
        res = swift_run(src, workers=1)
        lines = [line for _, line in res.output.lines]
        assert lines.index("H high") < lines.index("L low")

    def test_prio_requires_int(self):
        from repro.core import SwiftError, compile_swift

        with pytest.raises(SwiftError, match="@prio must be an int"):
            compile_swift('@prio="high" system("echo x");')

    def test_prio_on_composite_rejected(self):
        from repro.core import SwiftError, compile_swift

        with pytest.raises(SwiftError, match="leaf tasks"):
            compile_swift(
                "(int o) f(int x) { o = x; }\n"
                "@prio=5 int y = f(1);\n"
                'printf("%i", y);'
            )

    def test_prio_future_rejected(self):
        from repro.core import SwiftError, compile_swift

        with pytest.raises(SwiftError, match="spawn time"):
            compile_swift(
                'int p = parseint("3");\n'
                '@prio=p string s = system("echo x");\n'
                'printf("%s", s);'
            )

    def test_unknown_annotation_rejected(self):
        from repro.core import SwiftError, compile_swift

        with pytest.raises(SwiftError, match="unknown annotation"):
            compile_swift('@speed=9 system("echo x");')

    def test_prio_loop_index_allowed(self):
        from repro import swift_run

        src = """
foreach i in [0:3] {
    @prio=i string s = system(strcat("echo t", fromint(i)));
    printf("%s", s);
}
"""
        res = swift_run(src, workers=2, opt=2)
        assert sorted(res.stdout_lines) == ["t0", "t1", "t2", "t3"]


class TestTargetAnnotation:
    def test_target_pins_tasks_to_rank(self):
        from repro import swift_run

        src = """
(string o) whoami(int i) "python" "1.0" [
    "set <<o>> [ turbine::rank ]"
];
foreach i in [0:7] {
    @target=2 string r = whoami(i);
    printf("ran on %s", r);
}
"""
        res = swift_run(src, workers=3)
        assert sorted(res.stdout_lines) == ["ran on 2"] * 8

    def test_prio_and_target_combine(self):
        from repro import swift_run

        src = """
(string o) whoami() "python" "1.0" [
    "set <<o>> [ turbine::rank ]"
];
@prio=5 @target=1 string r = whoami();
printf("r=%s", r);
"""
        res = swift_run(src, workers=2)
        assert res.stdout_lines == ["r=1"]

    def test_target_requires_int(self):
        from repro.core import SwiftError, compile_swift

        with pytest.raises(SwiftError, match="@target must be an int"):
            compile_swift('@target="w0" system("echo x");')

    def test_duplicate_annotation_rejected(self):
        from repro.core import SwiftError, compile_swift

        with pytest.raises(SwiftError, match="duplicate annotation"):
            compile_swift('@prio=1 @prio=2 system("echo x");')
