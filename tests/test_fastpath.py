"""Invalidation behavior of the compile-and-cache fast paths.

The compiled Tcl forms memoize resolved command pointers (and the expr
AST / tail-return specializations built on top of them); the ADLB
client memoizes closed TD values.  Every cache here must be *exactly*
as fresh as the uncached path — these tests pin the invalidation rules.
"""

from __future__ import annotations

import threading

import pytest

from repro.adlb import AdlbClient, AdlbError, Layout, Server
from repro.adlb.constants import CONTROL, WORK
from repro.mpi import run_world
from repro.tcl.errors import TclError
from repro.tcl.interp import Interp


# ---------------------------------------------------------------- Tcl layer


@pytest.fixture
def interp():
    it = Interp()
    it.echo = False
    return it


class TestCompiledCallSiteInvalidation:
    def test_proc_redefinition_seen_by_compiled_caller(self, interp):
        interp.eval("proc f {} { return a }")
        interp.eval("proc g {} { return [f] }")
        assert interp.eval("g") == "a"
        interp.eval("proc f {} { return b }")
        assert interp.eval("g") == "b"

    def test_rename_seen_by_compiled_caller(self, interp):
        interp.eval("proc f {} { return old }")
        interp.eval("proc g {} { return [f] }")
        assert interp.eval("g") == "old"
        interp.eval("rename f saved")
        interp.eval("proc f {} { return new }")
        assert interp.eval("g") == "new"
        assert interp.eval("saved") == "old"

    def test_rename_to_empty_deletes_at_call_site(self, interp):
        interp.eval("proc f {} { return x }")
        interp.eval("proc g {} { return [f] }")
        assert interp.eval("g") == "x"
        interp.eval('rename f ""')
        with pytest.raises(TclError, match="invalid command"):
            interp.eval("g")

    def test_reregister_python_command(self, interp):
        interp.register("answer", lambda it, args: "one")
        interp.eval("proc g {} { return [answer] }")
        assert interp.eval("g") == "one"
        interp.register("answer", lambda it, args: "two")
        assert interp.eval("g") == "two"

    def test_redefinition_between_loop_iterations(self, interp):
        # The loop body is compiled once; the epoch check must still
        # pick up a redefinition made by an earlier iteration.
        interp.eval(
            "proc f {} { proc f {} { return second }; return first }"
        )
        out = interp.eval(
            "set out {}\n"
            "for {set i 0} {$i < 2} {incr i} { lappend out [f] }\n"
            "set out"
        )
        assert out == "first second"

    def test_expr_redefinition_disables_ast_fast_path(self, interp):
        # A literal [expr {...}] call site precompiles the AST and skips
        # the command dispatch entirely — until expr stops being the
        # builtin.
        interp.eval("proc g {x} { return [expr {$x + 1}] }")
        assert interp.eval("g 4") == "5"
        interp.register("expr", lambda it, args: "hijacked")
        assert interp.eval("g 4") == "hijacked"

    def test_return_redefinition_disables_tail_spec(self, interp):
        # A trailing `return $x` is specialized away (no exception, no
        # dispatch) — until return stops being the builtin.
        interp.eval("proc g {x} { return $x }")
        assert interp.eval("g hi") == "hi"
        interp.register("return", lambda it, args: "custom:" + args[0])
        assert interp.eval("g hi") == "custom:hi"

    def test_compiled_matches_interpreted(self):
        script = (
            "proc fib {n} { if {$n < 2} { return $n };"
            " return [expr {[fib [expr {$n-1}]] + [fib [expr {$n-2}]]}] }\n"
            "set parts {}\n"
            "foreach n {0 1 5 10} { lappend parts [fib $n] }\n"
            "set parts"
        )
        compiled = Interp()
        compiled.echo = False
        interpreted = Interp(compile_enabled=False)
        interpreted.echo = False
        assert compiled.eval(script) == interpreted.eval(script) == "0 1 5 55"


# --------------------------------------------------------------- ADLB layer


def run_client(client_fn, **client_kw):
    """Minimal world (server/engine/worker); runs client_fn on the
    engine rank with an :class:`AdlbClient` built from ``client_kw``."""
    layout = Layout(3, 1, 1)
    out: dict = {}

    def main(comm):
        if layout.is_server(comm.rank):
            Server(comm, layout).run()
            return
        if not layout.is_engine(comm.rank):  # idle worker
            client = AdlbClient(comm, layout)
            while client.get((WORK,)) is not None:
                pass
            return
        client = AdlbClient(comm, layout, **client_kw)
        client.incr_work()
        try:
            out["result"] = client_fn(client)
        finally:
            client.decr_work()
            client.park_async((CONTROL,))
            while client.recv_async()[0] != "shutdown":
                pass

    run_world(3, main)
    return out["result"]


class TestRetrieveCacheInvalidation:
    def test_cache_hit_counted(self):
        def body(client):
            td = client.create("integer")
            client.store(td, 42)
            assert client.retrieve(td) == 42
            assert client.retrieve(td) == 42
            return client.data_stats

        stats = run_client(body, read_cache=True)
        assert stats.hits == 1
        assert stats.misses == 1

    def test_no_stale_value_after_read_refcount_drop(self):
        # The regression this pins: once this client drops its read
        # reference, a cached copy must never be served again.
        def body(client):
            td = client.create("integer", read_refcount=1)
            client.store(td, 7)
            assert client.retrieve(td) == 7  # now cached
            client.refcount(td, read_delta=-1)  # TD freed server-side
            with pytest.raises(AdlbError):
                client.retrieve(td)
            return client.data_stats

        stats = run_client(body, read_cache=True)
        assert stats.evictions == 1

    def test_container_member_entries_evicted_with_container(self):
        def body(client):
            c = client.create("container", read_refcount=1)
            client.store(c, "v0", subscript="0", decr_write=0)
            client.store(c, "v1", subscript="1", decr_write=1)
            assert client.retrieve(c, subscript="0") == "v0"  # cached
            client.refcount(c, read_delta=-1)
            with pytest.raises(AdlbError):
                client.retrieve(c, subscript="0")
            return None

        run_client(body, read_cache=True)

    def test_batched_decrements_apply_at_flush(self):
        def body(client):
            a = client.create("integer", read_refcount=1)
            b = client.create("integer", read_refcount=1)
            client.store(a, 1)
            client.store(b, 2)
            assert client.retrieve(a) == 1
            client.refcount(a, read_delta=-1)
            client.refcount(b, read_delta=-1)
            # Deferred: the server has not applied either decrement, so
            # both TDs are still live — and retrieving `a` re-caches it.
            assert client.exists(b)
            assert client.retrieve(a) == 1
            # The flush's freed-list reply must evict that re-cached
            # entry, or the next retrieve would serve a freed TD.
            client.flush_refcounts()
            assert not client.exists(a)
            assert not client.exists(b)
            with pytest.raises(AdlbError):
                client.retrieve(a)
            return client.data_stats

        stats = run_client(body, read_cache=True, batch_refcounts=True)
        assert stats.refcount_batches == 1
        assert stats.refcount_batched_ops == 2

    def test_write_increments_bypass_batching(self):
        # Positive write deltas must reach the server immediately:
        # generated code adds writer slots before handing them out.
        def body(client):
            c = client.create("container", write_refcount=1)
            client.refcount(c, write_delta=2)  # must apply now
            client.store(c, "x", subscript="0", decr_write=1)
            client.store(c, "y", subscript="1", decr_write=1)
            client.store(c, "z", subscript="2", decr_write=1)  # closes
            return client.retrieve(c)

        members = run_client(body, read_cache=True, batch_refcounts=True)
        assert members == {"0": "x", "1": "y", "2": "z"}

    def test_defaults_off_for_bare_client(self):
        def body(client):
            assert not client.read_cache_enabled
            assert not client.batch_refcounts
            td = client.create("integer")
            client.store(td, 5)
            client.retrieve(td)
            client.retrieve(td)
            return client.data_stats

        stats = run_client(body)
        assert stats.hits == 0
        assert stats.misses == 0
