"""The ADLB typed data store: single-assignment, refcounts, subscriptions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adlb.datastore import (
    DataStore,
    DataStoreError,
    DoubleWriteError,
    NotFoundError,
    UnsetError,
)


@pytest.fixture()
def ds():
    return DataStore()


class TestScalars:
    def test_create_store_retrieve(self, ds):
        ds.create(1, "integer")
        ds.store(1, 42)
        assert ds.retrieve(1) == 42

    def test_retrieve_before_set_raises(self, ds):
        ds.create(1, "integer", write_refcount=2)
        with pytest.raises(UnsetError):
            ds.retrieve(1)

    def test_double_write_raises(self, ds):
        ds.create(1, "string", write_refcount=2)
        ds.store(1, "a")
        with pytest.raises(DoubleWriteError):
            ds.store(1, "b")

    def test_duplicate_create_raises(self, ds):
        ds.create(1, "integer")
        with pytest.raises(DataStoreError):
            ds.create(1, "integer")

    def test_unknown_type_raises(self, ds):
        with pytest.raises(DataStoreError):
            ds.create(1, "quaternion")

    def test_lookup_missing_raises(self, ds):
        with pytest.raises(NotFoundError):
            ds.lookup(99)

    def test_exists(self, ds):
        assert not ds.exists(1)
        ds.create(1, "integer", write_refcount=2)
        assert not ds.exists(1)  # created but unset
        ds.store(1, 5, decr_write=1)
        assert ds.exists(1)

    def test_store_closes_at_zero_writers(self, ds):
        td = ds.create(1, "integer")
        ds.store(1, 5)
        assert td.closed

    def test_store_with_remaining_writers_stays_open(self, ds):
        td = ds.create(1, "integer", write_refcount=3)
        ds.store(1, 5, decr_write=1)
        assert not td.closed


class TestSubscriptions:
    def test_subscribe_before_close(self, ds):
        ds.create(1, "integer")
        assert ds.subscribe(1, rank=7) is False
        notes, _ = ds.store(1, 5)
        assert [(n.rank, n.id) for n in notes] == [(7, 1)]

    def test_subscribe_after_close(self, ds):
        ds.create(1, "integer")
        ds.store(1, 5)
        assert ds.subscribe(1, rank=7) is True

    def test_multiple_subscribers_all_notified(self, ds):
        ds.create(1, "integer")
        for r in (3, 4, 5):
            ds.subscribe(1, rank=r)
        notes, _ = ds.store(1, 9)
        assert sorted(n.rank for n in notes) == [3, 4, 5]

    def test_notifications_fire_once(self, ds):
        ds.create(1, "integer", write_refcount=2)
        ds.subscribe(1, rank=3)
        notes, _ = ds.store(1, 9, decr_write=1)
        assert notes == []
        notes = ds.refcount(1, write_delta=-1)
        assert len(notes) == 1

    def test_close_via_refcount(self, ds):
        ds.create(1, "container")
        ds.subscribe(1, rank=2)
        notes = ds.refcount(1, write_delta=-1)
        assert [n.rank for n in notes] == [2]


class TestContainers:
    def test_insert_and_lookup(self, ds):
        ds.create(1, "container", write_refcount=3)
        ds.store(1, 100, subscript="0")
        ds.store(1, 101, subscript="1")
        assert ds.retrieve(1, subscript="0") == 100
        assert sorted(ds.enumerate(1)) == ["0", "1"]

    def test_duplicate_subscript_raises(self, ds):
        ds.create(1, "container", write_refcount=3)
        ds.store(1, 100, subscript="k")
        with pytest.raises(DoubleWriteError):
            ds.store(1, 200, subscript="k")

    def test_missing_subscript_raises(self, ds):
        ds.create(1, "container", write_refcount=2)
        with pytest.raises(UnsetError):
            ds.retrieve(1, subscript="zz")

    def test_scalar_store_on_container_requires_subscript(self, ds):
        ds.create(1, "container")
        with pytest.raises(DataStoreError):
            ds.store(1, 5)

    def test_subscript_on_scalar_raises(self, ds):
        ds.create(1, "integer")
        with pytest.raises(DataStoreError):
            ds.store(1, 5, subscript="0")

    def test_whole_container_retrieve(self, ds):
        ds.create(1, "container", write_refcount=3)
        ds.store(1, 10, subscript="a")
        ds.store(1, 20, subscript="b")
        assert ds.retrieve(1) == {"a": 10, "b": 20}

    def test_container_reference_existing_member(self, ds):
        ds.create(1, "container", write_refcount=2)
        ds.store(1, 99, subscript="k")
        ref = ds.container_reference(1, "k", ref_id=50)
        assert ref is not None and ref.ref_id == 50 and ref.value == 99

    def test_container_reference_pending_member(self, ds):
        ds.create(1, "container", write_refcount=2)
        assert ds.container_reference(1, "k", ref_id=50) is None
        _, refs = ds.store(1, 99, subscript="k")
        assert [(r.ref_id, r.value) for r in refs] == [(50, 99)]

    def test_multiple_pending_refs(self, ds):
        ds.create(1, "container", write_refcount=2)
        ds.container_reference(1, "k", 50)
        ds.container_reference(1, "k", 51)
        _, refs = ds.store(1, 1, subscript="k")
        assert sorted(r.ref_id for r in refs) == [50, 51]


class TestRefcounts:
    def test_negative_write_refcount_raises(self, ds):
        ds.create(1, "integer")
        ds.store(1, 5)
        with pytest.raises(DataStoreError):
            ds.refcount(1, write_delta=-1)

    def test_incr_after_close_raises(self, ds):
        ds.create(1, "integer")
        ds.store(1, 5)
        with pytest.raises(DataStoreError):
            ds.refcount(1, write_delta=1)

    def test_read_refcount_gc(self, ds):
        ds.create(1, "integer")
        ds.store(1, 5)
        ds.refcount(1, read_delta=-1)
        with pytest.raises(NotFoundError):
            ds.lookup(1)

    def test_create_with_zero_writers_rejected(self, ds):
        with pytest.raises(DataStoreError):
            ds.create(1, "integer", write_refcount=0)


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=9), st.integers()),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=100, deadline=None)
def test_property_container_mirrors_dict(pairs):
    """A container behaves like a write-once dict over subscripts."""
    ds = DataStore()
    ds.create(1, "container", write_refcount=len(pairs) + 1)
    mirror: dict[str, int] = {}
    for key, value in pairs:
        sub = str(key)
        if sub in mirror:
            with pytest.raises(DoubleWriteError):
                ds.store(1, value, subscript=sub)
        else:
            ds.store(1, value, subscript=sub)
            mirror[sub] = value
    assert ds.retrieve(1) == mirror
    assert sorted(ds.enumerate(1)) == sorted(mirror.keys())


@given(st.integers(min_value=1, max_value=20), st.data())
@settings(max_examples=100, deadline=None)
def test_property_close_exactly_at_zero(writers, data):
    """The TD closes exactly when cumulative decrements reach writers."""
    ds = DataStore()
    td = ds.create(1, "container", write_refcount=writers)
    ds.subscribe(1, rank=0)
    remaining = writers
    while remaining > 0:
        dec = data.draw(st.integers(min_value=1, max_value=remaining))
        notes = ds.refcount(1, write_delta=-dec)
        remaining -= dec
        if remaining == 0:
            assert td.closed and len(notes) == 1
        else:
            assert not td.closed and notes == []
