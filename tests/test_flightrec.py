"""Flight recorder, black-box capture, and post-mortem forensics.

Covers the always-on recorder end to end: ring mechanics (wrap, Lamport
clocks, slot recycling), black-box capture on every failure class,
``repro postmortem`` rendering (including the acceptance scenario: a
seeded engine kill with journaling off must yield a causally-ordered
cross-rank timeline naming the dead rank and the last message edges
into it), the recorder-off path, and the observability satellites
(Chrome flow events, monitor samples on short runs, latency
percentiles).
"""

from __future__ import annotations

import json
import os

import pytest

from repro import (
    DeadlineExceeded,
    EngineLost,
    FaultPlan,
    TaskError,
    swift_run,
)
from repro.cli import main as cli_main
from repro.obs import (
    FlightRecorder,
    Trace,
    load_blackbox,
    render_postmortem,
    write_blackbox,
)
from repro.obs import flightrec as flightrec_mod
from repro.obs.flightrec import BLACKBOX_FORMAT
from repro.obs.postmortem import causal_frontier, merged_timeline

SEED = int(os.environ.get("FAULT_SEED", "0"))

FANOUT = """
foreach i in [0:9] {
    string s = python(strcat("x=", fromint(i)), "x");
    trace(s);
}
"""

# With engines=2 the program runs on engine rank 0 (see
# test_engine_failover for the role layout).
PROGRAM_ENGINE = 0


def engine_kill_failure() -> EngineLost:
    """The acceptance scenario: seeded engine kill, journaling off."""
    with pytest.raises(EngineLost, match="journaling is disabled") as info:
        swift_run(
            FANOUT,
            workers=2,
            servers=1,
            engines=2,
            journal=False,
            faults=FaultPlan(seed=SEED).kill_rank(PROGRAM_ENGINE, after_tasks=3),
        )
    return info.value


class TestRing:
    def test_wrap_keeps_newest_events(self):
        fr = FlightRecorder(1, capacity=4)
        for k in range(10):
            fr.record(0, "tick", k)
        (ring,) = fr.snapshot()
        assert ring["dropped"] == 6
        assert ring["clock"] == 10
        # Oldest-first decode of the surviving tail, Lamport-monotone.
        assert [e[3] for e in ring["events"]] == [6, 7, 8, 9]
        assert [e[0] for e in ring["events"]] == [7, 8, 9, 10]

    def test_recv_clock_merges_past_sender(self):
        fr = FlightRecorder(2, capacity=8)
        for _ in range(5):
            fr.record(0, "tick")  # rank 0's clock races ahead
        sent = fr.note_send(0, 1, 11, 64)
        got = fr.note_recv(1, 0, 11, sent)
        assert got > sent  # a recv is strictly after its send
        assert fr.clock(1) == got

    def test_release_recycles_slots(self):
        fr = FlightRecorder(1, capacity=8)
        for k in range(5):
            fr.record(0, "tick", k)
        before = len(flightrec_mod._SLOT_POOL)
        fr.release()
        assert len(flightrec_mod._SLOT_POOL) == before + 5
        assert fr.snapshot()[0]["events"] == []
        # A released ring may be stamped again without corruption.
        fr.record(0, "tick", 99)
        assert fr.snapshot()[0]["events"][0][3] == 99


class TestBlackboxCapture:
    def test_engine_lost_carries_blackbox(self):
        e = engine_kill_failure()
        box = e.blackbox
        assert box is not None and box["format"] == BLACKBOX_FORMAT
        assert box["reason"] == "EngineLost"
        assert box["failed_ranks"] == [PROGRAM_ENGINE]
        assert box["roles"][PROGRAM_ENGINE] == "engine"
        assert any(r["events"] for r in box["rings"])

    def test_lamport_clocks_monotone_across_kill(self):
        box = engine_kill_failure().blackbox
        for ring in box["rings"]:
            lams = [ev[0] for ev in ring["events"]]
            # Strictly increasing within a rank: every event advanced
            # the clock, even while ranks were being killed.
            assert all(a < b for a, b in zip(lams, lams[1:]))

    def test_merged_timeline_never_puts_recv_before_send(self):
        box = engine_kill_failure().blackbox
        events = merged_timeline(box)
        assert events == sorted(events, key=lambda e: (e.lam, e.t, e.rank))
        # For every recv, a send with the acknowledged clock sorts
        # earlier (same-tag send from the claimed source).
        pos = {id(e): i for i, e in enumerate(events)}
        for e in events:
            if e.kind != "recv" or not e.c:
                continue
            matches = [
                s
                for s in events
                if s.kind == "send" and s.rank == e.a and s.lam == e.c
            ]
            for s in matches:
                assert pos[id(s)] < pos[id(e)]

    def test_task_error_carries_blackbox(self):
        with pytest.raises(TaskError) as info:
            swift_run(
                FANOUT,
                workers=2,
                max_retries=1,
                faults=FaultPlan(seed=SEED).fail_task("python", times=1000),
            )
        box = info.value.blackbox
        assert box is not None and box["reason"] == "TaskError"

    def test_deadline_exceeded_carries_blackbox(self):
        with pytest.raises(DeadlineExceeded) as info:
            swift_run(
                FANOUT,
                workers=2,
                deadline=1.5,
                recv_timeout=30.0,
                faults=FaultPlan(seed=SEED).drop_messages(tag=13, times=100),
            )
        box = info.value.blackbox
        assert box is not None and box["reason"] == "DeadlineExceeded"
        # The deadline path captures stacks of the still-stuck ranks.
        assert isinstance(box["stacks"], dict)

    def test_completed_run_with_failures_keeps_blackbox(self):
        res = swift_run(
            FANOUT,
            workers=2,
            on_error="continue",
            faults=FaultPlan(seed=SEED).fail_task("python", times=2),
        )
        assert not res.ok and res.blackbox is not None
        assert res.blackbox["reason"] == "task-failures"

    def test_blackbox_dir_writes_artifact(self, tmp_path):
        with pytest.raises(EngineLost) as info:
            swift_run(
                FANOUT,
                workers=2,
                servers=1,
                engines=2,
                journal=False,
                blackbox_dir=str(tmp_path),
                faults=FaultPlan(seed=SEED).kill_rank(
                    PROGRAM_ENGINE, after_tasks=3
                ),
            )
        path = info.value.blackbox_path
        assert path is not None and os.path.exists(path)
        assert os.path.basename(path).startswith("blackbox-enginelost-")
        assert load_blackbox(path)["reason"] == "EngineLost"


class TestRecorderOff:
    def test_failure_without_recorder_has_no_blackbox(self):
        with pytest.raises(EngineLost) as info:
            swift_run(
                FANOUT,
                workers=2,
                servers=1,
                engines=2,
                journal=False,
                flightrec=False,
                faults=FaultPlan(seed=SEED).kill_rank(
                    PROGRAM_ENGINE, after_tasks=3
                ),
            )
        assert getattr(info.value, "blackbox", None) is None

    def test_success_without_recorder_is_unchanged(self):
        res = swift_run(FANOUT, workers=2, flightrec=False)
        assert sorted(res.stdout_lines) == sorted(
            "trace: %d" % i for i in range(10)
        )
        assert res.blackbox is None and res.blackbox_path is None


class TestPostmortem:
    def test_acceptance_engine_kill_timeline(self):
        """Seeded engine kill + journal off: the post-mortem must name
        the dead rank and the last message edges into it."""
        box = engine_kill_failure().blackbox
        report = render_postmortem(box)
        assert "post-mortem: EngineLost" in report
        assert "failed ranks: 0 (engine)" in report
        assert "causal timeline" in report
        assert "causal frontier:" in report
        assert "rank 0 (engine) FAILED: last event" in report
        # Last message edges into the dead rank, each with a verdict.
        assert "-> 0 send lam=" in report
        assert ("delivered" in report) or ("NOT received" in report)
        # Server diagnostics were captured at the moment of failure.
        assert "server diagnostics at capture:" in report

    def test_frontier_marks_in_flight_sends(self):
        box = {
            "format": BLACKBOX_FORMAT,
            "reason": "test",
            "size": 2,
            "capacity": 8,
            "rings": [
                # rank 0 sent twice to rank 1; only the first arrived.
                {
                    "events": [
                        [1, 0.0, "send", 1, 11, 10],
                        [2, 0.1, "send", 1, 11, 20],
                    ],
                    "dropped": 0,
                    "clock": 2,
                },
                {
                    "events": [[2, 0.05, "recv", 0, 11, 1]],
                    "dropped": 0,
                    "clock": 2,
                },
            ],
        }
        frontier = causal_frontier(box)
        (edge,) = frontier[1]["inbound"]
        assert edge["lam"] == 2 and not edge["delivered"]

    def test_load_blackbox_rejects_foreign_json(self, tmp_path):
        p = tmp_path / "not-a-box.json"
        p.write_text('{"hello": "world"}')
        with pytest.raises(ValueError, match="not a repro-blackbox"):
            load_blackbox(str(p))

    def test_cli_postmortem_smoke(self, tmp_path, capsys):
        box = engine_kill_failure().blackbox
        path = write_blackbox(box, str(tmp_path))
        assert cli_main(["postmortem", path, "--last", "5"]) == 0
        out = capsys.readouterr().out
        assert "post-mortem: EngineLost" in out
        assert "causal frontier:" in out

    def test_cli_postmortem_bad_file_exits_2(self, tmp_path, capsys):
        p = tmp_path / "junk.json"
        p.write_text("{}")
        assert cli_main(["postmortem", str(p)]) == 2


class TestObservabilitySatellites:
    def test_chrome_flow_events_pair_send_recv(self, tmp_path):
        res = swift_run(FANOUT, workers=2, trace=True)
        doc = res.trace.to_chrome()
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert starts and finishes
        assert {e["cat"] for e in starts + finishes} == {"mpi.flow"}
        # Every flow id is used exactly once per side: send <-> recv.
        start_ids = [e["id"] for e in starts]
        finish_ids = [e["id"] for e in finishes]
        assert len(start_ids) == len(set(start_ids))
        assert sorted(start_ids) == sorted(finish_ids)
        # Round trip: flow phases are decoration, the event list itself
        # survives from_chrome unchanged.
        path = tmp_path / "t.trace.json"
        res.trace.save_chrome(str(path))
        loaded = Trace.from_chrome(str(path))
        assert len(loaded.events) == len(res.trace.events)

    def test_monitor_samples_short_run(self):
        # The run finishes far inside one monitor interval; the final
        # driver-side sample must still land a timeline row.
        res = swift_run(FANOUT, workers=2, monitor=True)
        assert len(res.timeline) >= 1
        sample = res.timeline[-1]
        assert sample.tasks >= 0 and "[monitor]" in sample.render()

    def test_latency_percentiles_in_profile(self):
        from repro.obs import Profile
        from repro.obs.report import HIST_TASK_LATENCY

        res = swift_run(FANOUT, workers=2, trace=True)
        hists = res.trace.metrics["histograms"]
        assert hists[HIST_TASK_LATENCY]["count"] > 0
        text = Profile.from_trace(res.trace).render()
        assert "latency percentiles:" in text
        assert "p95(s)" in text
