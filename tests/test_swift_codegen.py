"""Code-generation structure: emitted Tcl, slot accounting, opt levels."""

from __future__ import annotations

import pytest

from repro.core import compile_swift
from repro.core.codegen import block_writes, writer_count, writes_arrays
from repro.core.parser import parse
from repro.core.semantics import analyze


def gen(src: str, opt: int = 1) -> str:
    return compile_swift(src, opt=opt).tcl_text


class TestStructure:
    def test_main_proc_exists(self):
        text = gen("int x = 1;")
        assert "proc swift:main" in text

    def test_user_function_proc(self):
        text = gen("(int o) f(int x) { o = x; }")
        assert "proc swift:f:f" in text

    def test_extension_generates_dispatch_and_task(self):
        text = gen(
            '(int o) g(int i) "pkg" "1.0" [ "set <<o>> [ cmd <<i>> ]" ];'
        )
        assert "proc swift:f:g" in text
        assert "proc task:g" in text
        assert "set o_val [ cmd ${i_val} ]" in text
        assert "package require pkg" in text

    def test_ext_rule_is_work_typed(self):
        text = gen('(int o) g(int i) "p" "1.0" [ "set <<o>> <<i>>" ]; int y = g(1);')
        assert "] WORK" in text

    def test_app_generates_shell_call(self):
        text = gen('app (string o) e(string s) { "echo" s } string r = e("x"); trace(r);')
        assert "shell::exec" in text
        assert "lappend argv echo" in text

    def test_loop_spawns_control_tasks(self):
        text = gen("foreach i in [0:9] { trace(i); }")
        assert "turbine::spawn CONTROL" in text

    def test_if_hoisted_with_rule(self):
        text = gen("int c = parseint(\"1\"); if (c == 1) { trace(1); } else { trace(2); }")
        assert "proc swift:__if" in text
        assert "turbine::retrieve $c" in text

    def test_wait_rule(self):
        text = gen("int x = parseint(\"5\"); wait (x) { trace(x); }")
        assert "proc swift:__wait" in text


class TestSlotAccounting:
    def test_array_allocated_with_writer_slots(self):
        # one writer statement (the foreach) + declaration slot = 2
        text = gen("int a[];\nforeach i in [0:3] { a[i] = i; }\ntrace(size(a));")
        assert "turbine::allocate_container 2" in text

    def test_declaration_slot_released_at_block_end(self):
        text = gen("int a[]; a[0] = 1;")
        assert "turbine::write_refcount_decr" in text

    def test_loop_rebalances_by_iteration_count(self):
        text = gen("int a[]; foreach i in [0:3] { a[i] = i; }")
        assert "turbine::write_refcount_incr" in text
        assert "$n * 1" in text

    def test_two_writers_in_loop_body(self):
        text = gen(
            "int a[]; foreach i in [0:3] { a[i*2] = i; a[i*2+1] = i; }"
        )
        assert "$n * 2" in text

    def test_writes_analysis(self):
        prog = parse(
            "int a[]; int b[];\n"
            "foreach i in [0:1] { a[i] = 1; }\n"
            "if (true) { b[0] = 1; } else { }\n"
        )
        analyze(prog)
        stmts = prog.main.stmts
        assert writes_arrays(stmts[2]) == {"a"}
        assert writes_arrays(stmts[3]) == {"b"}
        assert block_writes(prog.main) == set()  # both declared here
        assert writer_count(prog.main, "a") == 1
        assert writer_count(prog.main, "b") == 1

    def test_nested_loop_writes_propagate(self):
        prog = parse(
            "int a[];\n"
            "foreach i in [0:1] { foreach j in [0:1] { a[i+j] = 1; } }\n"
        )
        analyze(prog)
        assert writes_arrays(prog.main.stmts[1]) == {"a"}

    def test_local_declaration_shadows_writes(self):
        prog = parse(
            "foreach i in [0:1] { int a[]; a[0] = i; trace(size(a)); }"
        )
        analyze(prog)
        assert writes_arrays(prog.main.stmts[0]) == set()


class TestOptimization:
    def test_o0_emits_rules_for_constants(self):
        text = gen("int x = 1 + 2; trace(x);", opt=0)
        assert "binop_integer" in text

    def test_o1_folds_constants(self):
        text = gen("int x = 1 + 2; trace(x);", opt=1)
        assert "binop_integer" not in text
        assert "store_integer" in text

    def test_o1_eliminates_constant_branch(self):
        text = gen("if (1 < 2) { trace(1); } else { trace(2); }", opt=1)
        assert "swift:__if" not in text

    def test_o0_keeps_constant_branch(self):
        text = gen("if (1 < 2) { trace(1); } else { trace(2); }", opt=0)
        assert "swift:__if" in text

    def test_o2_propagates_scalar_constants(self):
        o1 = gen("int x = 5; int y = x + 1; trace(y);", opt=1)
        o2 = gen("int x = 5; int y = x + 1; trace(y);", opt=2)
        assert "binop_integer" in o1
        assert "binop_integer" not in o2

    def test_o2_spawn_time_arithmetic_in_loops(self):
        o1 = gen("int a[]; foreach i in [0:3] { a[i+1] = i; }", opt=1)
        o2 = gen("int a[]; foreach i in [0:3] { a[i+1] = i; }", opt=2)
        # O2 computes the subscript at spawn time instead of a dataflow rule
        assert o2.count("binop_integer") < o1.count("binop_integer")

    def test_opt_levels_preserve_structure(self):
        src = "(int o) f(int x) { o = x * 2; } trace(f(4));"
        for opt in (0, 1, 2):
            text = gen(src, opt=opt)
            assert "proc swift:f:f" in text

    def test_emitted_size_shrinks_with_opt(self):
        src = (
            "int base = 100;\n"
            "int a[];\n"
            "foreach i in [0:9] { a[i] = base + i * 2 + 3; }\n"
            "trace(sum_integer(a));\n"
        )
        sizes = {opt: len(gen(src, opt=opt)) for opt in (0, 1, 2)}
        assert sizes[2] <= sizes[1] <= sizes[0]


class TestCompileStats:
    def test_stats_returned(self):
        compiled, stats = compile_swift("int x = 1;", return_stats=True)
        assert stats.n_procs >= 1
        assert stats.n_lines > 5
        assert stats.parse_time >= 0

    def test_printf_format_conversion(self):
        text = gen('printf("%i and %s", 1, "x");')
        assert "%d and %s" in text

    def test_printf_requires_literal_format(self):
        with pytest.raises(Exception, match="literal"):
            gen('string f = "x%i"; printf(f, 1);')
