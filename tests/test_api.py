"""Public API surface and baselines."""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro import (
    CompiledProgram,
    RuntimeConfig,
    SwiftRuntime,
    compile_swift,
    swift_run,
)
from repro.adlb.baselines import run_adlb_dynamic, run_static_round_robin


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_compile_returns_program(self):
        compiled = compile_swift('printf("x");')
        assert isinstance(compiled, CompiledProgram)
        assert compiled.entry == "swift:main"
        assert "proc swift:main" in compiled.tcl_text

    def test_swift_run_result_fields(self):
        res = swift_run('printf("a"); printf("b");', workers=2)
        assert sorted(res.stdout_lines) == ["a", "b"]
        assert res.stdout in ("a\nb", "b\na")
        assert res.elapsed > 0
        assert len(res.server_stats) == 1
        assert len(res.engine_stats) == 1
        assert len(res.worker_stats) == 2

    def test_compile_once_run_many(self):
        rt = SwiftRuntime(workers=2)
        compiled = rt.compile('printf("run");')
        out1 = rt.run_compiled(compiled)
        out2 = rt.run_compiled(compiled)
        assert out1.stdout_lines == out2.stdout_lines == ["run"]

    def test_setup_hook_receives_context(self):
        seen = []

        def setup(interp, ctx, client):
            seen.append((ctx.role, client.rank))
            interp.register("myext::id", lambda it, args: args[0])
            interp.packages_provided["myext"] = "1.0"

        res = swift_run(
            '(string o) ident(string s) "myext" "1.0" '
            '[ "set <<o>> [ myext::id <<s>> ]" ];\n'
            'printf("%s", ident("through-native"));\n',
            workers=2,
            setup=setup,
        )
        assert res.stdout_lines == ["through-native"]
        roles = {r for r, _ in seen}
        assert roles == {"engine", "worker"}

    def test_compile_error_raised_before_launch(self):
        with pytest.raises(repro.SwiftError):
            swift_run("int x = ;", workers=2)

    def test_server_stats_surface(self):
        res = swift_run("foreach i in [0:9] { trace(i); }", workers=2)
        total_queued = sum(
            s.tasks_queued + s.tasks_matched for s in res.server_stats
        )
        assert total_queued > 0

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
        for name in ("RuntimeConfig", "RunResult", "Trace"):
            assert name in repro.__all__


class TestConfigPath:
    """The redesigned RuntimeConfig-centric API."""

    def test_runtime_config_of_role_counts(self):
        cfg = RuntimeConfig.of(workers=5, servers=2, engines=1)
        assert cfg.size == 8
        assert cfg.workers == 5
        assert cfg.n_servers == 2

    def test_with_options_override_and_roles(self):
        cfg = RuntimeConfig.of(workers=2).with_options(
            workers=4, interp_mode="reinit"
        )
        assert cfg.workers == 4 and cfg.size == 6
        assert cfg.interp_mode == "reinit"
        # original untouched
        assert RuntimeConfig.of(workers=2).interp_mode == "retain"

    def test_unknown_option_raises(self):
        with pytest.raises(TypeError, match="recv_timout"):
            RuntimeConfig.of().with_options(recv_timout=3.0)

    def test_swift_run_unknown_kwarg_raises(self):
        # regression: typo'd kwargs must not vanish silently
        with pytest.raises(TypeError, match="interp_mod"):
            swift_run('printf("x");', workers=2, interp_mod="reinit")
        with pytest.raises(TypeError):
            swift_run('printf("x");', ech=True)

    def test_swift_run_accepts_config(self):
        cfg = RuntimeConfig.of(workers=3)
        res = swift_run('printf("via config");', config=cfg)
        assert res.stdout_lines == ["via config"]
        assert len(res.worker_stats) == 3

    def test_swift_run_overrides_on_config(self):
        cfg = RuntimeConfig.of(workers=1)
        res = swift_run('printf("x");', config=cfg, workers=4)
        assert len(res.worker_stats) == 4

    def test_legacy_record_spans_maps_to_trace(self):
        res = swift_run('printf("x");', workers=2, record_spans=True)
        assert res.trace is not None

    def test_from_config(self):
        rt = SwiftRuntime.from_config(RuntimeConfig.of(workers=3))
        assert rt.workers == 3
        res = rt.run('printf("fc");')
        assert res.stdout_lines == ["fc"]

    def test_runtime_options_flow_through_swift_run(self):
        res = swift_run('printf("x");', workers=2, recv_timeout=60.0)
        assert res.stdout_lines == ["x"]


class TestSession:
    def test_session_runs_and_reuses_cache(self):
        with SwiftRuntime(workers=2) as rt:
            out1 = rt.run('printf("s");')
            assert rt._cache is not None and len(rt._cache) == 1
            out2 = rt.run('printf("s");')
            assert len(rt._cache) == 1  # cache hit, not recompiled
        assert out1.stdout_lines == out2.stdout_lines == ["s"]
        assert rt._cache is None  # cleared on exit

    def test_session_traced_merges_runs(self):
        with SwiftRuntime(workers=2, trace=True) as rt:
            rt.run('printf("a");')
            rt.run('printf("b");')
        assert len(rt.trace.spans("run")) == 2

    def test_per_run_override_inside_session(self):
        with SwiftRuntime(workers=1) as rt:
            res = rt.run('printf("x");', workers=3)
        assert len(res.worker_stats) == 3


class TestBaselines:
    def test_static_round_robin_runs_all(self):
        hits = []
        run_static_round_robin(3, lambda i: hits.append(i), 12)
        assert sorted(hits) == list(range(12))

    def test_adlb_dynamic_runs_all(self):
        hits = []
        run_adlb_dynamic(3, lambda i: hits.append(i), 12)
        assert sorted(hits) == list(range(12))

    def test_dynamic_balances_heavy_tail_better(self):
        durations = np.full(24, 0.001)
        # long tasks all land on worker 0 under static i % 3 assignment
        durations[[0, 3, 6]] = 0.02
        def task(i):
            time.sleep(durations[int(i)])

        static = run_static_round_robin(3, task, 24)
        dynamic = run_adlb_dynamic(3, task, 24)
        # static puts all three long tasks on worker 0 (i % 3 == 0)
        assert dynamic.imbalance < static.imbalance

    def test_imbalance_zero_for_empty(self):
        res = run_static_round_robin(2, lambda i: None, 0)
        assert res.imbalance >= 0.0
