"""Work-queue matching: priorities, FIFO ties, targeting, stealing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adlb.workqueue import Task, WorkQueue


class TestBasicMatching:
    def test_fifo_within_priority(self):
        q = WorkQueue()
        for i in range(5):
            q.push(Task("WORK", i))
        assert [q.pop(("WORK",), 0).payload for _ in range(5)] == list(range(5))

    def test_priority_order(self):
        q = WorkQueue()
        q.push(Task("WORK", "low", priority=1))
        q.push(Task("WORK", "high", priority=10))
        q.push(Task("WORK", "mid", priority=5))
        got = [q.pop(("WORK",), 0).payload for _ in range(3)]
        assert got == ["high", "mid", "low"]

    def test_empty_pop_returns_none(self):
        q = WorkQueue()
        assert q.pop(("WORK",), 0) is None

    def test_type_separation(self):
        q = WorkQueue()
        q.push(Task("WORK", "w"))
        q.push(Task("CONTROL", "c"))
        assert q.pop(("CONTROL",), 0).payload == "c"
        assert q.pop(("CONTROL",), 0) is None
        assert q.pop(("WORK",), 0).payload == "w"

    def test_multi_type_pop_takes_best_priority(self):
        q = WorkQueue()
        q.push(Task("WORK", "w", priority=1))
        q.push(Task("CONTROL", "c", priority=5))
        assert q.pop(("WORK", "CONTROL"), 0).payload == "c"

    def test_size_tracking(self):
        q = WorkQueue()
        for i in range(4):
            q.push(Task("WORK", i))
        assert q.size == 4
        q.pop(("WORK",), 0)
        assert q.size == 3


class TestTargeting:
    def test_targeted_only_matches_target(self):
        q = WorkQueue()
        q.push(Task("WORK", "for-3", target=3))
        assert q.pop(("WORK",), 0) is None
        assert q.pop(("WORK",), 3).payload == "for-3"

    def test_targeted_beats_untargeted_on_tie(self):
        q = WorkQueue()
        q.push(Task("WORK", "any"))
        q.push(Task("WORK", "mine", target=2))
        # same priority: the earlier push has the lower seq and wins;
        # push order here puts "any" first
        assert q.pop(("WORK",), 2).payload == "any"
        assert q.pop(("WORK",), 2).payload == "mine"

    def test_steal_leaves_targeted_tasks(self):
        q = WorkQueue()
        q.push(Task("WORK", "pinned", target=1))
        q.push(Task("WORK", "free1"))
        q.push(Task("WORK", "free2"))
        stolen = q.steal(10)
        assert sorted(t.payload for t in stolen) == ["free1", "free2"]
        assert q.pop(("WORK",), 1).payload == "pinned"

    def test_steal_respects_max(self):
        q = WorkQueue()
        for i in range(10):
            q.push(Task("WORK", i))
        stolen = q.steal(4)
        assert len(stolen) == 4
        assert q.size == 6

    def test_counts_by_type(self):
        q = WorkQueue()
        q.push(Task("WORK", 1))
        q.push(Task("WORK", 2, target=5))
        q.push(Task("CONTROL", 3))
        assert q.counts_by_type() == {"WORK": 2, "CONTROL": 1}


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=-5, max_value=5),  # priority
            st.integers(min_value=0, max_value=999),  # payload
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=150, deadline=None)
def test_property_pop_order_is_priority_then_fifo(tasks):
    q = WorkQueue()
    for prio, payload in tasks:
        q.push(Task("WORK", payload, priority=prio))
    popped = []
    while True:
        t = q.pop(("WORK",), 0)
        if t is None:
            break
        popped.append(t)
    assert len(popped) == len(tasks)
    # expected order: stable sort by descending priority (FIFO on ties)
    expected = [tasks[i][1] for i, _ in sorted(
        enumerate(tasks), key=lambda iv: (-iv[1][0], iv[0])
    )]
    assert [t.payload for t in popped] == expected


@given(st.integers(min_value=0, max_value=40), st.integers(min_value=1, max_value=40))
@settings(max_examples=100, deadline=None)
def test_property_no_tasks_lost_or_duplicated_by_steal(n_tasks, max_steal):
    q = WorkQueue()
    for i in range(n_tasks):
        q.push(Task("WORK", i))
    stolen = q.steal(max_steal)
    rest = []
    while True:
        t = q.pop(("WORK",), 0)
        if t is None:
            break
        rest.append(t)
    all_payloads = sorted([t.payload for t in stolen] + [t.payload for t in rest])
    assert all_payloads == list(range(n_tasks))
