"""Stress and invariant tests under real concurrency."""

from __future__ import annotations

import threading

import pytest

from repro import swift_run
from repro.adlb import AdlbClient, Layout, Server
from repro.adlb.constants import CONTROL, WORK
from repro.mpi import run_world


@pytest.mark.parametrize("servers", [1, 3])
def test_many_tasks_none_lost(servers):
    """600 tasks across 12 ranks: delivered exactly once, all servers."""
    n_tasks = 600
    size = 12
    layout = Layout(size, servers, 1)
    collected: list[int] = []
    lock = threading.Lock()

    def main(comm):
        if layout.is_server(comm.rank):
            Server(comm, layout).run()
            return
        client = AdlbClient(comm, layout)
        if layout.is_engine(comm.rank):
            client.incr_work()
            for i in range(n_tasks):
                client.incr_work()
                client.put(i, type=WORK, priority=i % 7)
            client.decr_work()
            client.park_async((CONTROL,))
            while client.recv_async()[0] != "shutdown":
                pass
            return
        mine = []
        while True:
            got = client.get((WORK,))
            if got is None:
                with lock:
                    collected.extend(mine)
                return
            mine.append(got[1])
            client.decr_work()

    run_world(size, main)
    assert sorted(collected) == list(range(n_tasks))


def test_concurrent_data_ops_many_clients():
    """Multiple engines hammer the data store concurrently; every TD
    round-trips and ids never collide."""
    size = 8
    layout = Layout(size, 2, 4)
    results: dict[int, list] = {}
    lock = threading.Lock()

    def main(comm):
        if layout.is_server(comm.rank):
            Server(comm, layout).run()
            return
        client = AdlbClient(comm, layout)
        if layout.is_engine(comm.rank):
            client.incr_work()
            mine = []
            for k in range(60):
                td = client.create("integer")
                client.store(td, comm.rank * 1000 + k)
                mine.append((td, client.retrieve(td)))
            with lock:
                results[comm.rank] = mine
            client.decr_work()
            client.park_async((CONTROL,))
            while client.recv_async()[0] != "shutdown":
                pass
            return
        while client.get((WORK,)) is not None:
            client.decr_work()

    run_world(size, main)
    all_ids = [td for mine in results.values() for td, _ in mine]
    assert len(all_ids) == len(set(all_ids)) == 240
    for rank, mine in results.items():
        assert [v for _, v in mine] == [rank * 1000 + k for k in range(60)]


def test_wide_fanout_program():
    """A 200-iteration Swift loop with arithmetic rules per iteration."""
    out = swift_run(
        "int a[];\n"
        "foreach i in [0:199] { a[i] = i * 2 + 1; }\n"
        'printf("%i %i", size(a), sum_integer(a));',
        workers=5,
        servers=2,
        engines=2,
    )
    assert out.stdout_lines == ["200 40000"]


def test_deep_dependency_chain():
    """A 40-deep sequential dataflow chain completes (no stack issues)."""
    lines = ["int v0 = parseint(\"1\");"]
    for i in range(1, 41):
        lines.append("int v%d = v%d + 1;" % (i, i - 1))
    lines.append('printf("%i", v40);')
    out = swift_run("\n".join(lines), workers=2)
    assert out.stdout_lines == ["41"]


def test_shared_input_many_consumers():
    """One future feeding 50 rules: a single subscription fans out."""
    out = swift_run(
        "int x = parseint(\"7\");\n"
        "int a[];\n"
        "foreach i in [0:49] { a[i] = x + i; }\n"
        'printf("%i", sum_integer(a));',
        workers=3,
    )
    assert out.stdout_lines == [str(sum(7 + i for i in range(50)))]


def test_rule_with_duplicate_inputs():
    """x used twice in one expression: dedup in rule subscription."""
    out = swift_run(
        "int x = parseint(\"6\");\n"
        'printf("%i", x * x);',
        workers=2,
    )
    assert out.stdout_lines == ["36"]


def test_interleaved_python_r_tasks_share_workers():
    out = swift_run(
        "int a[];\n"
        "foreach i in [0:19] {\n"
        "  if (i % 2 == 0) {\n"
        '    a[i] = parseint(python(strcat("v = ", fromint(i)), "v"));\n'
        "  } else {\n"
        '    a[i] = parseint(r(strcat("v <- ", fromint(i)), "v"));\n'
        "  }\n"
        "}\n"
        'printf("%i", sum_integer(a));',
        workers=4,
    )
    assert out.stdout_lines == ["190"]
