"""blobutils: blobs, casts, C-string framing, Fortran arrays, pointers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blob import (
    Blob,
    FortranArray,
    PointerTable,
    blob_from_floats,
    blob_from_string,
    blob_to_floats,
    blob_to_string,
    floats_from_string,
    floats_to_string,
)
from repro.blob.blob import BlobError
from repro.blob.pointers import PointerError


class TestBlob:
    def test_from_bytes_round_trip(self):
        blob = Blob.from_bytes(b"\x01\x02\x03")
        assert blob.to_bytes() == b"\x01\x02\x03"
        assert blob.nbytes == 3
        assert len(blob) == 3

    def test_double_blob(self):
        blob = Blob(np.array([1.5, 2.5]), "double")
        assert blob.nbytes == 16
        assert blob.get(1) == 2.5

    def test_cast_void_to_double(self):
        raw = np.array([1.0, 2.0, 3.0]).tobytes()
        blob = Blob.from_bytes(raw)  # byte-typed, like void*
        doubles = blob.cast("double")
        assert list(doubles.data) == [1.0, 2.0, 3.0]

    def test_cast_shares_buffer(self):
        blob = Blob(np.zeros(4), "double")
        view = blob.cast("byte")
        view.data[0] = 1  # mutate through the view
        assert blob.to_bytes()[0] == 1

    def test_cast_misaligned_raises(self):
        blob = Blob.from_bytes(b"\x00" * 7)
        with pytest.raises(BlobError):
            blob.cast("double")

    def test_unknown_ctype_raises(self):
        with pytest.raises(BlobError):
            Blob(b"", "quadfloat")

    def test_get_set_bounds(self):
        blob = Blob(np.zeros(3), "double")
        blob.set(2, 9.0)
        assert blob.get(2) == 9.0
        with pytest.raises(BlobError):
            blob.get(3)
        with pytest.raises(BlobError):
            blob.set(-1, 0.0)

    def test_equality(self):
        a = Blob(np.array([1.0, 2.0]), "double")
        b = Blob(np.array([1.0, 2.0]), "double")
        c = Blob(np.array([1.0, 3.0]), "double")
        assert a == b
        assert a != c


class TestStringFraming:
    def test_c_string_round_trip(self):
        blob = blob_from_string("héllo wörld")
        assert blob.to_bytes().endswith(b"\x00")
        assert blob_to_string(blob) == "héllo wörld"

    def test_embedded_content_after_nul_ignored(self):
        blob = Blob.from_bytes(b"abc\x00junk")
        assert blob_to_string(blob) == "abc"

    def test_empty_string(self):
        assert blob_to_string(blob_from_string("")) == ""


class TestFloatMarshaling:
    def test_blob_round_trip(self):
        values = [1.0, -2.5, 3.14159, 1e-8]
        assert list(blob_to_floats(blob_from_floats(values))) == values

    def test_string_baseline_round_trip(self):
        values = [1.0, -2.5, 0.1]
        assert list(floats_from_string(floats_to_string(values))) == values

    def test_empty_string_baseline(self):
        assert list(floats_from_string("")) == []

    def test_bad_float_string_raises(self):
        with pytest.raises(BlobError):
            floats_from_string("1.0 banana")


class TestFortranArray:
    def test_column_major_layout(self):
        fa = FortranArray.zeros((2, 3))
        fa.set(1, 0, 5.0)
        # column-major: element (1,0) is at linear offset 1
        assert fa.blob.cast("double").get(1) == 5.0
        assert fa.linear_index(1, 0) == 1
        assert fa.linear_index(0, 1) == 2

    def test_from_numpy_round_trip(self):
        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        fa = FortranArray.from_numpy(arr)
        assert np.array_equal(fa.to_numpy(), arr)

    def test_shape_mismatch_raises(self):
        blob = Blob(np.zeros(5), "double")
        with pytest.raises(BlobError):
            FortranArray(blob, (2, 3))

    def test_bad_dimension_raises(self):
        with pytest.raises(BlobError):
            FortranArray.zeros((0, 3))

    def test_out_of_bounds_linear_index(self):
        fa = FortranArray.zeros((2, 2))
        with pytest.raises(BlobError):
            fa.linear_index(2, 0)

    def test_3d(self):
        fa = FortranArray.zeros((2, 3, 4))
        fa.set(1, 2, 3, 7.0)
        assert fa.get(1, 2, 3) == 7.0
        assert fa.linear_index(1, 2, 3) == 1 + 2 * 2 + 3 * 6


class TestPointerTable:
    def test_register_lookup(self):
        pt = PointerTable()
        h = pt.register([1, 2], "double")
        assert h.endswith("_p_double")
        assert pt.lookup(h) == [1, 2]
        assert pt.lookup(h, "double") == [1, 2]

    def test_type_mismatch_raises(self):
        pt = PointerTable()
        h = pt.register(object(), "void")
        with pytest.raises(PointerError, match="type mismatch"):
            pt.lookup(h, "double")

    def test_cast_changes_type(self):
        pt = PointerTable()
        h = pt.register("obj", "void")
        h2 = pt.cast(h, "double")
        assert pt.lookup(h2, "double") == "obj"

    def test_free_dangles(self):
        pt = PointerTable()
        h = pt.register(1, "int")
        pt.free(h)
        with pytest.raises(PointerError, match="dangling"):
            pt.lookup(h)

    def test_parse_garbage_raises(self):
        with pytest.raises(PointerError):
            PointerTable.parse("not-a-pointer")


# --- properties --------------------------------------------------------------

_float_lists = st.lists(
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    min_size=0,
    max_size=50,
)


@given(_float_lists)
@settings(max_examples=150, deadline=None)
def test_property_blob_float_round_trip(values):
    assert list(blob_to_floats(blob_from_floats(values))) == values


@given(_float_lists)
@settings(max_examples=150, deadline=None)
def test_property_string_marshal_round_trip(values):
    assert list(floats_from_string(floats_to_string(values))) == values


@given(st.binary(max_size=120))
@settings(max_examples=150, deadline=None)
def test_property_bytes_round_trip(raw):
    assert Blob.from_bytes(raw).to_bytes() == raw


@given(st.text(max_size=60).filter(lambda s: "\x00" not in s))
@settings(max_examples=150, deadline=None)
def test_property_c_string_round_trip(s):
    assert blob_to_string(blob_from_string(s)) == s


@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
)
@settings(max_examples=60, deadline=None)
def test_property_fortran_layout_matches_numpy(rows, cols):
    arr = np.arange(rows * cols, dtype=np.float64).reshape(rows, cols)
    fa = FortranArray.from_numpy(arr)
    for i in range(rows):
        for j in range(cols):
            assert fa.get(i, j) == arr[i, j]
            assert fa.blob.cast("double").get(fa.linear_index(i, j)) == arr[i, j]
