"""ADLB servers + clients over the MPI substrate, end to end."""

from __future__ import annotations

import threading

import pytest

from repro.adlb import AdlbClient, AdlbError, Layout, Server
from repro.adlb.constants import CONTROL, WORK
from repro.mpi import run_world


def run_adlb(size, n_servers, n_engines, engine_fn, worker_fn, steal=True):
    """Run an ADLB world; engine_fn/worker_fn receive an AdlbClient."""
    layout = Layout(size, n_servers, n_engines)
    results = {}
    lock = threading.Lock()

    def main(comm):
        if layout.is_server(comm.rank):
            stats = Server(comm, layout, steal=steal).run()
            with lock:
                results[comm.rank] = stats
            return
        client = AdlbClient(comm, layout)
        fn = engine_fn if layout.is_engine(comm.rank) else worker_fn
        with lock:
            results[comm.rank] = None
        out = fn(client)
        with lock:
            results[comm.rank] = out

    run_world(size, main)
    return layout, results


def standard_engine(tasks):
    """Engine that submits a bag of tasks then idles until shutdown."""

    def engine(client):
        client.incr_work()
        for t in tasks:
            client.incr_work()
            client.put(t, type=WORK)
        client.decr_work()
        client.park_async((CONTROL,))
        while True:
            if client.recv_async()[0] == "shutdown":
                return "engine-done"

    return engine


def collecting_worker(collected, lock):
    def worker(client):
        mine = []
        while True:
            got = client.get((WORK,))
            if got is None:
                with lock:
                    collected.extend(mine)
                return len(mine)
            mine.append(got[1])
            client.decr_work()

    return worker


class TestTaskDistribution:
    def test_all_tasks_delivered_once(self):
        collected = []
        lock = threading.Lock()
        _, results = run_adlb(
            6, 1, 1,
            standard_engine(list(range(40))),
            collecting_worker(collected, lock),
        )
        assert sorted(collected) == list(range(40))

    def test_multi_server_delivery(self):
        collected = []
        lock = threading.Lock()
        layout, results = run_adlb(
            8, 2, 1,
            standard_engine(list(range(60))),
            collecting_worker(collected, lock),
        )
        assert sorted(collected) == list(range(60))

    def test_steal_balances_across_servers(self):
        # One engine attached to one server submits everything; with
        # two servers the other server's workers only eat via stealing.
        collected = []
        lock = threading.Lock()
        layout, results = run_adlb(
            8, 2, 1,
            standard_engine(list(range(80))),
            collecting_worker(collected, lock),
        )
        assert sorted(collected) == list(range(80))
        worker_counts = [results[r] for r in layout.workers]
        # every worker should have gotten something (steal works)
        assert all(c > 0 for c in worker_counts), worker_counts

    def test_no_steal_still_terminates(self):
        collected = []
        lock = threading.Lock()
        _, _ = run_adlb(
            8, 2, 1,
            standard_engine(list(range(30))),
            collecting_worker(collected, lock),
            steal=False,
        )
        # tasks all go to the engine's attached server; workers attached
        # to the other server stay idle, but termination must still fire
        assert sorted(collected) == list(range(30))

    def test_zero_tasks_terminates(self):
        collected = []
        lock = threading.Lock()
        run_adlb(4, 1, 1, standard_engine([]), collecting_worker(collected, lock))
        assert collected == []

    def test_priorities_respected_single_worker(self):
        got = []

        def engine(client):
            client.incr_work()
            for i, prio in enumerate([0, 5, 1]):
                client.incr_work()
                client.put(("p", prio, i), type=WORK, priority=prio)
            client.decr_work()
            client.park_async((CONTROL,))
            while client.recv_async()[0] != "shutdown":
                pass

        def worker(client):
            while True:
                task = client.get((WORK,))
                if task is None:
                    return
                got.append(task[1])
                client.decr_work()

        run_adlb(3, 1, 1, engine, worker)
        assert [g[1] for g in got] == [5, 1, 0]

    def test_targeted_task_goes_to_target(self):
        layout = Layout(5, 1, 1)
        target_rank = layout.workers[-1]
        who = {}

        def engine(client):
            client.incr_work()
            for _ in range(6):
                client.incr_work()
                client.put("targeted", type=WORK, target=target_rank)
            client.decr_work()
            client.park_async((CONTROL,))
            while client.recv_async()[0] != "shutdown":
                pass

        def worker(client):
            n = 0
            while True:
                task = client.get((WORK,))
                if task is None:
                    who[client.rank] = n
                    return
                n += 1
                client.decr_work()

        run_adlb(5, 1, 1, engine, worker)
        assert who[target_rank] == 6
        assert all(v == 0 for r, v in who.items() if r != target_rank)


class TestDataOps:
    def _data_engine(self, fn):
        def engine(client):
            client.incr_work()
            fn(client)
            client.decr_work()
            client.park_async((CONTROL,))
            while client.recv_async()[0] != "shutdown":
                pass

        return engine

    def _idle_worker(self, client):
        while client.get((WORK,)) is not None:
            client.decr_work()
        return None

    def test_create_store_retrieve_roundtrip(self):
        seen = {}

        def work(client):
            td = client.create("integer")
            client.store(td, 123)
            seen["value"] = client.retrieve(td)
            seen["type"] = client.typeof(td)
            seen["exists"] = client.exists(td)

        run_adlb(3, 1, 1, self._data_engine(work), self._idle_worker)
        assert seen == {"value": 123, "type": "integer", "exists": True}

    def test_ids_unique_across_clients(self):
        ids = []
        lock = threading.Lock()

        def work(client):
            mine = [client.allocate_id() for _ in range(300)]
            with lock:
                ids.extend(mine)

        # two engines both allocating
        run_adlb(4, 1, 2, self._data_engine(work), self._idle_worker)
        assert len(ids) == 600
        assert len(set(ids)) == 600

    def test_multi_server_data_routing(self):
        seen = {}

        def work(client):
            tds = [client.create("string") for _ in range(10)]
            for i, td in enumerate(tds):
                client.store(td, "v%d" % i)
            seen["values"] = [client.retrieve(td) for td in tds]
            homes = {client.layout.home_server(td) for td in tds}
            seen["homes"] = homes

        run_adlb(6, 2, 1, self._data_engine(work), self._idle_worker)
        assert seen["values"] == ["v%d" % i for i in range(10)]
        assert len(seen["homes"]) == 2  # both servers hold data

    def test_store_error_surfaces_to_client(self):
        seen = {}

        def work(client):
            td = client.create("integer")
            client.store(td, 1)
            try:
                client.store(td, 2)
            except AdlbError as e:
                seen["error"] = str(e)

        run_adlb(3, 1, 1, self._data_engine(work), self._idle_worker)
        assert "twice" in seen["error"]

    def test_container_ops(self):
        seen = {}

        def work(client):
            c = client.create("container", write_refcount=3)
            client.store(c, 11, subscript="a")
            client.store(c, 22, subscript="b")
            seen["subs"] = sorted(client.enumerate(c))
            seen["a"] = client.retrieve(c, subscript="a")
            client.refcount(c, write_delta=-1)

        run_adlb(3, 1, 1, self._data_engine(work), self._idle_worker)
        assert seen == {"subs": ["a", "b"], "a": 11}

    def test_subscribe_notification_flow(self):
        seen = {}

        def engine(client):
            client.incr_work()
            td = client.create("integer")
            closed_now = client.subscribe(td)
            assert closed_now is False
            # the pending continuation (a "rule") holds a work unit, as
            # Engine.add_rule does — otherwise shutdown could race the
            # notification handler's RPCs
            client.incr_work()
            # ship a task that stores the td
            client.incr_work()
            client.put(("store", td), type=WORK)
            client.decr_work()
            client.park_async((CONTROL,))
            while True:
                msg = client.recv_async()
                if msg[0] == "notify":
                    seen["notified_id"] = msg[1]
                    seen["value"] = client.retrieve(td)
                    client.decr_work()  # the rule unit
                elif msg[0] == "shutdown":
                    return

        def worker(client):
            while True:
                got = client.get((WORK,))
                if got is None:
                    return
                _, (op, td) = got
                client.store(td, 777)
                client.decr_work()

        run_adlb(3, 1, 1, engine, worker)
        assert seen["value"] == 777

    def test_container_reference_store_through(self):
        seen = {}

        def work(client):
            c = client.create("container", write_refcount=2)
            ref = client.create("integer")
            client.container_reference(c, "k", ref)
            client.store(c, 55, subscript="k")
            seen["ref_value"] = client.retrieve(ref)

        run_adlb(3, 1, 1, self._data_engine(work), self._idle_worker)
        assert seen["ref_value"] == 55


class TestLayout:
    def test_roles_partition_ranks(self):
        layout = Layout(10, 2, 3)
        all_ranks = set(layout.engines) | set(layout.workers) | set(layout.servers)
        assert all_ranks == set(range(10))
        assert layout.n_workers == 5
        assert layout.master_server == 8

    def test_role_names(self):
        layout = Layout(4, 1, 1)
        assert layout.role(0) == "engine"
        assert layout.role(1) == "worker"
        assert layout.role(3) == "server"

    def test_invalid_layouts_rejected(self):
        with pytest.raises(ValueError):
            Layout(2, 1, 1)  # no workers
        with pytest.raises(ValueError):
            Layout(4, 0, 1)  # no servers
        with pytest.raises(ValueError):
            Layout(4, 1, 0)  # no engines

    def test_home_server_distribution(self):
        layout = Layout(8, 3, 1)
        homes = {layout.home_server(i) for i in range(30)}
        assert homes == set(layout.servers)
