"""Server fault tolerance: replication, failover, checkpoint/restart.

Like :mod:`tests.test_faults`, every plan here is seeded from the
``FAULT_SEED`` environment variable (the CI matrix runs 0/1/2), so the
assertions must hold for *any* seed.  The CI job filters these tests
with ``-k replicate_on`` / ``-k replicate_off``, which is why those
substrings appear in the test names.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import DeadlineExceeded, FaultPlan, ServerLost, swift_run
from repro.adlb import constants as C
from repro.adlb.checkpoint import CheckpointError, read_checkpoint
from repro.adlb.layout import Layout, ServerMap
from repro.adlb.server import Server, _Lease
from repro.adlb.workqueue import Task
from repro.mpi.comm import World

SEED = int(os.environ.get("FAULT_SEED", "0"))

FANOUT = """
foreach i in [0:9] {
    string s = python(strcat("x=", fromint(i)), "x");
    trace(s);
}
"""
FANOUT_EXPECTED = sorted("trace: %d" % i for i in range(10))


def counters(res) -> dict:
    return res.trace.metrics["counters"]


# With workers=2, servers=2, engines=1 the world has size 5; servers
# occupy the top ranks [3, 4] and rank 3 is the master (termination
# counter + TD id blocks).
MASTER, OTHER = 3, 4


class TestServerDeath:
    def test_server_kill_recovery_replicate_on(self):
        # A non-master server dies mid-run; its buddy promotes the
        # replica shard and the run completes with the right answer.
        res = swift_run(
            FANOUT,
            workers=2,
            servers=2,
            trace=True,
            faults=FaultPlan(seed=SEED).kill_rank(OTHER, after_tasks=5),
        )
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        assert res.ok
        c = counters(res)
        assert c["fault.kills"] == 1
        assert c["adlb.repl.server_deaths"] == 1
        assert c["adlb.repl.promotions"] == 1
        # Only the survivor reports server stats.
        assert len(res.server_stats) == 1

    def test_master_kill_recovery_replicate_on(self):
        # The master dies: besides the shard, the heir must reconstruct
        # the termination counter and the TD id-block cursor, or the
        # run would never detect quiescence (or hand out stale ids).
        res = swift_run(
            FANOUT,
            workers=2,
            servers=2,
            trace=True,
            faults=FaultPlan(seed=SEED).kill_rank(MASTER, after_tasks=8),
        )
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        assert res.ok
        assert counters(res)["adlb.repl.promotions"] == 1

    def test_silent_server_kill_recovery_replicate_on(self):
        # A silent kill sends no dead-rank notification: the buddy must
        # notice the missing replication heartbeat on its own.
        res = swift_run(
            FANOUT,
            workers=2,
            servers=2,
            trace=True,
            lease_timeout=0.5,
            faults=FaultPlan(seed=SEED).kill_rank(
                OTHER, after_tasks=5, silent=True
            ),
        )
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        c = counters(res)
        assert c["adlb.repl.server_deaths"] == 1
        assert c["adlb.repl.promotions"] == 1

    def test_server_kill_replicate_off_raises_server_lost(self):
        # Replication explicitly off: the death is unrecoverable, and
        # it must surface as a prompt diagnostic naming the dead rank,
        # not as a hang or an opaque timeout.
        t0 = time.perf_counter()
        with pytest.raises(ServerLost, match="server rank %d lost" % OTHER):
            swift_run(
                FANOUT,
                workers=2,
                servers=2,
                replicate=False,
                faults=FaultPlan(seed=SEED).kill_rank(OTHER, after_tasks=5),
            )
        assert time.perf_counter() - t0 < 10.0

    def test_single_server_kill_replicate_off_raises_server_lost(self):
        # A lone server has no buddy, so replication cannot be on; its
        # death still produces the diagnostic rather than a hang.
        with pytest.raises(ServerLost, match="replication is disabled"):
            swift_run(
                FANOUT,
                workers=3,
                servers=1,
                faults=FaultPlan(seed=SEED).kill_rank(4, after_tasks=5),
            )

    def test_replicate_on_needs_two_servers(self):
        with pytest.raises(ValueError, match="n_servers >= 2"):
            swift_run(FANOUT, workers=3, servers=1, replicate=True)


class TestMessageFaults:
    """Satellite: the client<->server RPC path under drops and delays.

    The key invariant is *no duplicate work*: a re-sent request that
    already landed must hit the server's dedup slot, never enqueue a
    second copy of a task or double-apply a mutation — so every run
    executes exactly 10 leaf tasks and prints exactly 10 lines.
    """

    def test_request_drops_resend_replicate_off(self):
        # Single server (replication off); dropped client->server
        # requests are re-sent after the resend interval.
        res = swift_run(
            FANOUT,
            workers=2,
            servers=1,
            trace=True,
            faults=FaultPlan(seed=SEED).drop_messages(
                tag=C.TAG_REQUEST, times=3
            ),
        )
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        assert res.tasks_run == 10
        c = counters(res)
        assert c["fault.dropped_msgs"] == 3
        assert c["adlb.rpc.resends"] >= 3

    def test_response_drops_dedup_replicate_off(self):
        # Dropped server->client replies: the client re-sends, and the
        # server recognizes the duplicate sequence number and re-sends
        # the cached reply instead of reprocessing the operation.
        res = swift_run(
            FANOUT,
            workers=2,
            servers=1,
            trace=True,
            faults=FaultPlan(seed=SEED).drop_messages(
                tag=C.TAG_RESPONSE, times=3
            ),
        )
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        assert res.tasks_run == 10
        c = counters(res)
        assert c["adlb.rpc.resends"] >= 3
        assert c["adlb.repl.dedup_hits"] >= 1

    def test_request_drops_resend_replicate_on(self):
        # Same invariant with two replicating servers: re-sends and
        # replication must not double-queue work.
        res = swift_run(
            FANOUT,
            workers=2,
            servers=2,
            trace=True,
            faults=FaultPlan(seed=SEED).drop_messages(
                tag=C.TAG_REQUEST, times=3
            ),
        )
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        assert res.tasks_run == 10

    def test_probabilistic_delay_jitter_replicate_on(self):
        # Seeded random message delays reorder traffic without losing
        # it; the run must stay exactly-once from the outside.
        res = swift_run(
            FANOUT,
            workers=2,
            servers=2,
            trace=True,
            faults=FaultPlan(seed=SEED).delay_messages(
                probability=0.2, delay=0.002, times=None
            ),
        )
        assert sorted(res.stdout_lines) == FANOUT_EXPECTED
        assert res.tasks_run == 10


class TestCheckpointRestart:
    def _program(self, tmp_path) -> str:
        # Each leaf task writes its own marker file, so completion is
        # observable across two separate runs (stdout dies with run 1).
        return (
            "foreach i in [0:9] {\n"
            '    string code = strcat("import time; time.sleep(0.12); '
            "open('%s/out_\", fromint(i), \"','w').write('\", fromint(i), "
            '"\'); x=", fromint(i));\n'
            '    string s = python(code, "x");\n'
            "    trace(s);\n"
            "}\n"
        ) % tmp_path

    def test_restore_resumes_killed_world(self, tmp_path):
        ckpt = str(tmp_path / "run.ckpt")
        program = self._program(tmp_path)
        with pytest.raises(DeadlineExceeded):
            swift_run(
                program,
                workers=1,
                servers=1,
                checkpoint_path=ckpt,
                checkpoint_interval=0.05,
                deadline=0.7,
            )
        assert os.path.exists(ckpt)
        done_before = {
            f for f in os.listdir(tmp_path) if f.startswith("out_")
        }
        assert len(done_before) < 10  # the run really was cut short
        res = swift_run(program, workers=1, servers=1, restore=ckpt)
        assert res.ok
        for i in range(10):
            path = tmp_path / ("out_%d" % i)
            assert path.read_text() == str(i)

    def test_restore_checkpoint_validated(self, tmp_path):
        ckpt = str(tmp_path / "run.ckpt")
        program = self._program(tmp_path)
        with pytest.raises(DeadlineExceeded):
            swift_run(
                program,
                workers=1,
                servers=1,
                checkpoint_path=ckpt,
                checkpoint_interval=0.05,
                deadline=0.7,
            )
        image = read_checkpoint(ckpt)
        assert image["version"] == 1
        # Restoring into a different world shape is refused up front.
        with pytest.raises(CheckpointError, match="identically-shaped"):
            swift_run(program, workers=3, servers=1, restore=ckpt)

    def test_restore_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            swift_run(
                FANOUT,
                workers=2,
                servers=1,
                restore=str(tmp_path / "nope.ckpt"),
            )


class TestHangDiagnostics:
    def test_server_diagnostic_reports_leases_and_repl_lag(self):
        # Satellite: recv-timeout hang reports must include the owning
        # server's lease table and replication lag, not just queue
        # depths.  Exercise the registered diagnostic directly.
        layout = Layout(size=5, n_servers=2, n_engines=1)
        world = World(5, recv_timeout=None)
        server = Server(
            world.comm(MASTER),
            layout,
            leases=True,
            server_map=ServerMap(layout),
            replicate=True,
        )
        server._leases[1] = _Lease(
            task=Task(payload="leaf-task-payload", type=C.WORK),
            client=1,
            deadline=time.monotonic() + 30.0,
        )
        server._repl_seq, server._repl_acked = 7, 4
        line = server._diagnostic()
        assert "leaf-task-payload" in line
        assert "repl lag=3" in line
        assert "buddy=%d" % OTHER in line
        # The diagnostic is registered with the comm layer, so hang
        # reports (DeadlockError) pick it up automatically.
        assert world.diagnostics[MASTER]() == line
