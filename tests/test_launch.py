"""Job specs, submission-script rendering, and the simulated scheduler."""

from __future__ import annotations

import pytest

from repro.launch import JobError, JobSpec, SimScheduler, render


class TestJobSpec:
    def test_totals(self):
        spec = JobSpec("j", nodes=4, procs_per_node=16)
        assert spec.total_procs == 64

    def test_walltime_format(self):
        assert JobSpec("j", nodes=1, walltime_s=3725).walltime_hms() == "01:02:05"

    def test_validation(self):
        with pytest.raises(JobError):
            JobSpec("j", nodes=0)
        with pytest.raises(JobError):
            JobSpec("j", nodes=1, procs_per_node=0)
        with pytest.raises(JobError):
            JobSpec("j", nodes=1, walltime_s=0)


class TestRenderers:
    def test_pbs(self):
        text = render(JobSpec("sim", nodes=8, procs_per_node=4), "pbs")
        assert "#PBS -l nodes=8:ppn=4" in text
        assert "mpiexec -n 32 turbine" in text

    def test_slurm(self):
        text = render(JobSpec("sim", nodes=2, queue="debug"), "slurm")
        assert "#SBATCH --nodes=2" in text
        assert "--partition=debug" in text
        assert "srun -n 2" in text

    def test_cobalt_bgq(self):
        text = render(
            JobSpec("sim", nodes=1024, procs_per_node=16, walltime_s=7200),
            "cobalt",
        )
        assert "#COBALT -n 1024" in text
        assert "#COBALT -t 120" in text
        assert "runjob --np 16384" in text

    def test_env_vars_exported(self):
        spec = JobSpec("j", nodes=1, env={"TURBINE_LOG": "1"})
        assert "export TURBINE_LOG=1" in render(spec, "slurm")

    def test_unknown_scheduler(self):
        with pytest.raises(JobError, match="unknown scheduler"):
            render(JobSpec("j", nodes=1), "loadleveler")


class TestSimScheduler:
    def test_fifo_single_job(self):
        s = SimScheduler(total_nodes=4)
        jid = s.submit(JobSpec("a", nodes=4, estimated_runtime_s=10))
        assert s.state(jid) == "running"
        assert s.run_to_completion() == 10.0
        assert s.state(jid) == "done"

    def test_sequential_when_full(self):
        s = SimScheduler(total_nodes=4)
        a = s.submit(JobSpec("a", nodes=4, estimated_runtime_s=10))
        b = s.submit(JobSpec("b", nodes=4, estimated_runtime_s=10))
        assert s.state(b) == "queued"
        assert s.run_to_completion() == 20.0

    def test_parallel_when_fits(self):
        s = SimScheduler(total_nodes=8)
        s.submit(JobSpec("a", nodes=4, estimated_runtime_s=10))
        s.submit(JobSpec("b", nodes=4, estimated_runtime_s=10))
        assert s.run_to_completion() == 10.0

    def test_backfill_small_job_jumps_queue(self):
        s = SimScheduler(total_nodes=8, backfill=True)
        s.submit(JobSpec("running", nodes=6, estimated_runtime_s=100))
        big = s.submit(JobSpec("big", nodes=8, estimated_runtime_s=10))
        small = s.submit(JobSpec("small", nodes=2, estimated_runtime_s=50))
        # small (2 nodes, 50s) fits in the 2 free nodes and finishes
        # before the big job could start (t=100), so it backfills now
        assert s.state(small) == "running"
        assert s.state(big) == "queued"
        s.run_to_completion()

    def test_backfill_does_not_delay_head(self):
        s = SimScheduler(total_nodes=8, backfill=True)
        s.submit(JobSpec("running", nodes=6, estimated_runtime_s=100))
        s.submit(JobSpec("big", nodes=8, estimated_runtime_s=10))
        late = s.submit(JobSpec("toolong", nodes=2, estimated_runtime_s=500))
        # 500s > head's start estimate (100s): must NOT backfill
        assert s.state(late) == "queued"

    def test_no_backfill_mode(self):
        s = SimScheduler(total_nodes=8, backfill=False)
        s.submit(JobSpec("running", nodes=6, estimated_runtime_s=100))
        s.submit(JobSpec("big", nodes=8, estimated_runtime_s=10))
        small = s.submit(JobSpec("small", nodes=2, estimated_runtime_s=5))
        assert s.state(small) == "queued"

    def test_oversized_job_rejected(self):
        s = SimScheduler(total_nodes=4)
        with pytest.raises(JobError, match="machine has"):
            s.submit(JobSpec("huge", nodes=5))

    def test_wait_times_recorded(self):
        s = SimScheduler(total_nodes=4)
        a = s.submit(JobSpec("a", nodes=4, estimated_runtime_s=30))
        b = s.submit(JobSpec("b", nodes=4, estimated_runtime_s=5))
        s.run_to_completion()
        assert s.records[a].wait_time == 0.0
        assert s.records[b].wait_time == 30.0

    def test_utilization(self):
        s = SimScheduler(total_nodes=4)
        s.submit(JobSpec("a", nodes=4, estimated_runtime_s=10))
        s.run_to_completion()
        assert s.utilization() == pytest.approx(1.0)

    def test_submit_at_time(self):
        s = SimScheduler(total_nodes=4)
        s.submit(JobSpec("a", nodes=2, estimated_runtime_s=10))
        s.submit(JobSpec("b", nodes=2, estimated_runtime_s=10), at=5.0)
        assert s.run_to_completion() == 15.0
