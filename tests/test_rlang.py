"""The embedded mini-R interpreter."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rlang import RError, RInterp, r_repr


@pytest.fixture()
def R():
    return RInterp()


def ev(R, src: str) -> str:
    return r_repr(R.eval_code(src))


class TestVectors:
    def test_c_concatenates(self, R):
        assert ev(R, "c(1, 2, c(3, 4))") == "1 2 3 4"

    def test_character_vectors(self, R):
        assert ev(R, "c('a', 'b')") == "a b"

    def test_mixed_coerces_to_character(self, R):
        assert ev(R, "c(1, 'a')") == "1 a"

    def test_colon_range(self, R):
        assert ev(R, "1:5") == "1 2 3 4 5"
        assert ev(R, "5:1") == "5 4 3 2 1"

    def test_seq(self, R):
        assert ev(R, "seq(0, 1, by=0.5)") == "0 0.5 1"
        assert ev(R, "seq(1, 9, length.out=3)") == "1 5 9"
        assert ev(R, "seq_len(4)") == "1 2 3 4"
        assert ev(R, "seq_along(c('x','y'))") == "1 2"

    def test_rep(self, R):
        assert ev(R, "rep(c(1,2), times=2)") == "1 2 1 2"
        assert ev(R, "rep(c(1,2), each=2)") == "1 1 2 2"

    def test_length(self, R):
        assert ev(R, "length(1:7)") == "7"
        assert ev(R, "length(NULL)") == "0"

    def test_recycling_in_arithmetic(self, R):
        assert ev(R, "1:6 + c(10, 20)") == "11 22 13 24 15 26"

    def test_vectorized_math(self, R):
        assert ev(R, "sqrt(c(4, 9, 16))") == "2 3 4"

    def test_elementwise_comparison(self, R):
        assert ev(R, "c(1,5,3) > 2") == "FALSE TRUE TRUE"


class TestIndexing:
    def test_positive_index_one_based(self, R):
        assert ev(R, "c(10,20,30)[2]") == "20"

    def test_index_vector(self, R):
        assert ev(R, "c(10,20,30)[c(3,1)]") == "30 10"

    def test_negative_index_excludes(self, R):
        assert ev(R, "c(10,20,30)[-2]") == "10 30"

    def test_logical_mask(self, R):
        assert ev(R, "x <- 1:6; x[x %% 2 == 0]") == "2 4 6"

    def test_index_assignment(self, R):
        assert ev(R, "x <- c(1,2,3); x[2] <- 99; x") == "1 99 3"

    def test_index_assignment_grows(self, R):
        assert ev(R, "x <- c(1); x[3] <- 5; length(x)") == "3"

    def test_double_bracket_on_list(self, R):
        assert ev(R, "l <- list(10, 'x'); l[[2]]") == "x"

    def test_dollar_access(self, R):
        assert ev(R, "l <- list(a=1, b=2); l$b") == "2"

    def test_dollar_assignment(self, R):
        assert ev(R, "l <- list(a=1); l$c <- 9; l$c") == "9"

    def test_out_of_bounds_list_raises(self, R):
        with pytest.raises(RError):
            R.eval_code("list(1)[[5]]")


class TestFunctions:
    def test_closure(self, R):
        assert ev(R, "f <- function(x) x + 1; f(41)") == "42"

    def test_default_arguments(self, R):
        assert ev(R, "f <- function(a, b=10) a*b; f(3)") == "30"

    def test_named_arguments(self, R):
        assert ev(R, "f <- function(a, b) a - b; f(b=1, a=10)") == "9"

    def test_lexical_scoping(self, R):
        assert ev(R, "make <- function(n) function(x) x + n; add5 <- make(5); add5(2)") == "7"

    def test_superassign(self, R):
        assert ev(R, "count <- 0; bump <- function() count <<- count + 1; bump(); bump(); count") == "2"

    def test_return_early(self, R):
        assert ev(R, "f <- function(x) { if (x > 0) return('pos'); 'neg' }; f(1)") == "pos"
        assert ev(R, "f(-1)") == "neg"

    def test_recursion(self, R):
        assert ev(R, "fib <- function(n) if (n < 2) n else fib(n-1) + fib(n-2); fib(10)") == "55"

    def test_unused_named_argument_raises(self, R):
        with pytest.raises(RError):
            R.eval_code("f <- function(a) a; f(b=1)")

    def test_immediately_invoked(self, R):
        assert ev(R, "(function(x) x*2)(21)") == "42"


class TestControlFlow:
    def test_if_else(self, R):
        assert ev(R, "if (1 > 2) 'a' else 'b'") == "b"

    def test_for_loop(self, R):
        assert ev(R, "s <- 0; for (i in 1:10) s <- s + i; s") == "55"

    def test_for_over_character(self, R):
        assert ev(R, "out <- ''; for (w in c('a','b')) out <- paste0(out, w); out") == "ab"

    def test_while_with_break(self, R):
        assert ev(R, "n <- 0; while (TRUE) { n <- n + 1; if (n == 5) break }; n") == "5"

    def test_next_skips(self, R):
        assert ev(R, "s <- 0; for (i in 1:6) { if (i %% 2 == 0) next; s <- s + i }; s") == "9"

    def test_repeat(self, R):
        assert ev(R, "n <- 0; repeat { n <- n + 1; if (n >= 3) break }; n") == "3"

    def test_condition_length_zero_raises(self, R):
        with pytest.raises(RError):
            R.eval_code("if (c()) 1")


class TestBuiltins:
    def test_reductions(self, R):
        assert ev(R, "sum(1:10)") == "55"
        assert ev(R, "mean(c(2,4,9))") == "5"
        assert ev(R, "max(c(3,9,1))") == "9"
        assert ev(R, "min(c(3,9,1))") == "1"
        assert ev(R, "prod(1:5)") == "120"

    def test_sd_var(self, R):
        assert abs(float(R.eval_code("sd(c(2,4,4,4,5,5,7,9))")[0]) - 2.13809) < 1e-4

    def test_cumsum(self, R):
        assert ev(R, "cumsum(1:4)") == "1 3 6 10"

    def test_paste(self, R):
        assert ev(R, "paste('a', 'b', sep='-')") == "a-b"
        assert ev(R, "paste0('x', 1:3)") == "x1 x2 x3"
        assert ev(R, "paste(c('a','b'), collapse='+')") == "a+b"

    def test_string_ops(self, R):
        assert ev(R, "nchar('hello')") == "5"
        assert ev(R, "toupper('ab')") == "AB"
        assert ev(R, "substr('abcdef', 2, 4)") == "bcd"

    def test_sprintf(self, R):
        assert ev(R, "sprintf('%05.1f|%d|%s', 3.14, 7, 'x')") == "003.1|7|x"

    def test_sapply(self, R):
        assert ev(R, "sapply(1:4, function(x) x^2)") == "1 4 9 16"

    def test_lapply_returns_list(self, R):
        assert ev(R, "length(lapply(1:3, function(x) x))") == "3"

    def test_map_reduce(self, R):
        assert ev(R, "Reduce(function(a,b) a*b, 1:5)") == "120"
        assert ev(R, "length(Map(function(a,b) a+b, 1:3, 4:6))") == "3"

    def test_do_call(self, R):
        assert ev(R, "do.call(sum, list(1, 2, 3))") == "6"

    def test_which_sort_rev_unique(self, R):
        assert ev(R, "which(c(F,T,F,T))") == "2 4"
        assert ev(R, "sort(c(3,1,2))") == "1 2 3"
        assert ev(R, "rev(1:3)") == "3 2 1"
        assert ev(R, "unique(c(1,2,1,3))") == "1 2 3"

    def test_coercions(self, R):
        assert ev(R, "as.integer(3.9)") == "3"
        assert ev(R, "as.character(c(1,2))") == "1 2"
        assert ev(R, "as.numeric('2.5') * 2") == "5"
        assert ev(R, "as.logical('TRUE')") == "TRUE"

    def test_predicates(self, R):
        assert ev(R, "is.null(NULL)") == "TRUE"
        assert ev(R, "is.numeric(1:3)") == "TRUE"
        assert ev(R, "is.character('a')") == "TRUE"
        assert ev(R, "is.na(c(1, NA))") == "FALSE TRUE"

    def test_ifelse(self, R):
        assert ev(R, "ifelse(c(TRUE,FALSE,TRUE), 1, 0)") == "1 0 1"

    def test_stop_and_stopifnot(self, R):
        with pytest.raises(RError, match="boom"):
            R.eval_code("stop('boom')")
        with pytest.raises(RError):
            R.eval_code("stopifnot(1 == 2)")

    def test_cat_output(self, R):
        R.eval_code("cat('hello', 42)")
        assert R.output == ["hello 42"]

    def test_rng_deterministic(self, R):
        a = ev(R, "set.seed(7); runif(3)")
        b = ev(R, "set.seed(7); runif(3)")
        assert a == b

    def test_sample_without_replacement(self, R):
        assert ev(R, "set.seed(1); sort(sample(5))") == "1 2 3 4 5"

    def test_comments_ignored(self, R):
        assert ev(R, "x <- 1 # set x\nx + 1") == "2"


class TestState:
    def test_state_persists_across_eval_calls(self, R):
        R.eval_code("cache <- 42")
        assert ev(R, "cache") == "42"

    def test_reset_clears_user_state(self, R):
        R.eval_code("x <- 1")
        R.reset()
        with pytest.raises(RError, match="not found"):
            R.eval_code("x")

    def test_builtins_survive_reset(self, R):
        R.reset()
        assert ev(R, "sum(1:3)") == "6"

    def test_set_get_host_interface(self, R):
        R.set("fromhost", np.array([1.0, 2.0]))
        assert ev(R, "sum(fromhost)") == "3"


# --- property tests --------------------------------------------------------

_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


@given(st.lists(_floats, min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_property_sum_matches_numpy(values):
    R = RInterp()
    R.set("v", np.array(values))
    got = float(R.eval_code("sum(v)")[0])
    assert got == pytest.approx(float(np.sum(values)), rel=1e-9, abs=1e-9)


@given(
    st.lists(_floats, min_size=1, max_size=12),
    st.lists(_floats, min_size=1, max_size=12),
)
@settings(max_examples=100, deadline=None)
def test_property_recycling_law(a, b):
    """R recycling: (a + b)[i] == a[i % len(a)] + b[i % len(b)]."""
    R = RInterp()
    R.set("a", np.array(a))
    R.set("b", np.array(b))
    out = R.eval_code("a + b")
    n = max(len(a), len(b))
    assert len(out) == n
    for i in range(n):
        assert out[i] == pytest.approx(a[i % len(a)] + b[i % len(b)])


@given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=15))
@settings(max_examples=100, deadline=None)
def test_property_sort_rev_involution(values):
    R = RInterp()
    R.set("v", np.array(values, dtype=np.float64))
    sorted_once = R.eval_code("sort(v)")
    assert list(sorted_once) == sorted(float(v) for v in values)
    double_rev = R.eval_code("rev(rev(v))")
    assert list(double_rev) == [float(v) for v in values]
