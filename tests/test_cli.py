"""The command-line interface (stc/turbine analog)."""

from __future__ import annotations

import os

import pytest

from repro.cli import main


@pytest.fixture()
def demo_swift(tmp_path):
    path = tmp_path / "demo.swift"
    path.write_text(
        "int n = argv_int(\"n\", 3);\n"
        "int a[];\n"
        "foreach i in [0:n] { a[i] = i; }\n"
        'printf("total=%i", sum_integer(a));\n'
    )
    return str(path)


class TestCompile:
    def test_compile_writes_tic(self, demo_swift, capsys):
        assert main(["compile", demo_swift]) == 0
        tic = demo_swift.replace(".swift", ".tic")
        assert os.path.exists(tic)
        text = open(tic).read()
        assert "proc swift:main" in text
        assert "compiled" in capsys.readouterr().out

    def test_compile_custom_output_and_opt(self, demo_swift, tmp_path, capsys):
        out = str(tmp_path / "custom.tcl")
        assert main(["compile", demo_swift, "-O2", "-o", out]) == 0
        assert "-O2" in capsys.readouterr().out
        assert os.path.exists(out)

    def test_compile_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.swift"
        bad.write_text("int x = ;")
        assert main(["compile", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["compile", "/no/such/file.swift"]) == 1


class TestRun:
    def test_run_default_args(self, demo_swift, capsys):
        assert main(["run", demo_swift, "--workers", "2"]) == 0
        assert "total=6" in capsys.readouterr().out

    def test_run_with_args(self, demo_swift, capsys):
        assert main(["run", demo_swift, "--arg", "n=5"]) == 0
        assert "total=15" in capsys.readouterr().out

    def test_run_failure_exit_code(self, tmp_path, capsys, monkeypatch):
        # chdir: a failed CLI run dumps blackbox-*.json into the
        # current directory by default.
        monkeypatch.chdir(tmp_path)
        src = tmp_path / "fail.swift"
        src.write_text('assert(1 > 2, "always fails");')
        assert main(["run", str(src)]) == 3
        err = capsys.readouterr().err
        assert "run failed" in err
        assert "repro postmortem" in err

    def test_bad_arg_format(self, demo_swift):
        with pytest.raises(SystemExit):
            main(["run", demo_swift, "--arg", "oops"])

    def test_runtcl_roundtrip(self, demo_swift, capsys):
        assert main(["compile", demo_swift]) == 0
        capsys.readouterr()
        tic = demo_swift.replace(".swift", ".tic")
        assert main(["runtcl", tic, "--arg", "n=4"]) == 0
        assert "total=10" in capsys.readouterr().out


class TestProfile:
    def test_profile_prints_breakdown(self, demo_swift, capsys):
        assert main(["profile", demo_swift, "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "per-category time" in out
        assert "counters:" in out
        assert "adlb.tasks_matched" in out

    def test_profile_writes_chrome_json(self, demo_swift, tmp_path, capsys):
        import json

        chrome = str(tmp_path / "out.trace.json")
        assert main(["profile", demo_swift, "--chrome", chrome]) == 0
        doc = json.loads(open(chrome).read())
        assert doc["traceEvents"], "no events exported"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases >= {"M", "X"}

    def test_trace_writes_default_path(self, demo_swift, capsys):
        import json

        assert main(["trace", demo_swift]) == 0
        out_path = demo_swift.replace(".swift", ".trace.json")
        assert os.path.exists(out_path)
        doc = json.loads(open(out_path).read())
        assert doc["traceEvents"]
        assert "trace written to" in capsys.readouterr().out

    def test_run_trace_flag_reports(self, demo_swift, capsys):
        assert main(["run", demo_swift, "--trace"]) == 0
        captured = capsys.readouterr()
        assert "total=6" in captured.out
        assert "per-category time" in captured.err


class TestSubmit:
    def test_submit_slurm(self, demo_swift, capsys):
        assert main(
            ["submit", demo_swift, "--scheduler", "slurm", "--nodes", "64"]
        ) == 0
        out = capsys.readouterr().out
        assert "#SBATCH --nodes=64" in out
        assert "demo.tic" in out

    def test_submit_cobalt(self, demo_swift, capsys):
        assert main(
            [
                "submit", demo_swift, "--scheduler", "cobalt",
                "--nodes", "1024", "--ppn", "16", "--walltime", "1800",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "#COBALT -n 1024" in out
        assert "#COBALT -t 30" in out


class TestArgv:
    def test_argv_missing_without_default_fails(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # failed runs dump blackbox-*.json to cwd
        src = tmp_path / "needs.swift"
        src.write_text('printf("%s", argv("required"));')
        assert main(["run", str(src)]) == 3

    def test_argv_string(self, tmp_path, capsys):
        src = tmp_path / "greet.swift"
        src.write_text('printf("hi %s", argv("who"));')
        assert main(["run", str(src), "--arg", "who=world"]) == 0
        assert "hi world" in capsys.readouterr().out
