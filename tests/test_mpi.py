"""The thread-backed MPI substrate."""

from __future__ import annotations

import threading
import time

import pytest

from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    AbortError,
    DeadlockError,
    World,
    run_world,
)
from repro.mpi.launcher import RankFailure


class TestPointToPoint:
    def test_send_recv(self):
        def main(comm):
            if comm.rank == 0:
                comm.send({"a": 7}, dest=1, tag=11)
            elif comm.rank == 1:
                data, st = comm.recv(source=0, tag=11)
                assert data == {"a": 7}
                assert st.source == 0 and st.tag == 11

        run_world(2, main)

    def test_tag_matching_out_of_order(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("first", 1, tag=1)
                comm.send("second", 1, tag=2)
            else:
                # receive tag 2 before tag 1
                b, _ = comm.recv(source=0, tag=2)
                a, _ = comm.recv(source=0, tag=1)
                assert (a, b) == ("first", "second")

        run_world(2, main)

    def test_fifo_per_source_tag(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(50):
                    comm.send(i, 1, tag=3)
            else:
                for i in range(50):
                    v, _ = comm.recv(source=0, tag=3)
                    assert v == i

        run_world(2, main)

    def test_any_source(self):
        def main(comm):
            if comm.rank == 0:
                seen = set()
                for _ in range(comm.size - 1):
                    v, st = comm.recv(source=ANY_SOURCE, tag=5)
                    assert v == st.source
                    seen.add(st.source)
                assert seen == {1, 2, 3}
            else:
                comm.send(comm.rank, 0, tag=5)

        run_world(4, main)

    def test_iprobe(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("x", 1, tag=9)
            else:
                while comm.iprobe(tag=9) is None:
                    time.sleep(0.001)
                st = comm.iprobe(tag=9)
                assert st.source == 0
                comm.recv(source=0, tag=9)
                assert comm.iprobe(tag=9) is None

        run_world(2, main)

    def test_recv_poll_timeout_returns_none(self):
        def main(comm):
            assert comm.recv_poll(timeout=0.05) is None

        run_world(1, main)

    def test_bad_destination(self):
        def main(comm):
            with pytest.raises(ValueError):
                comm.send("x", 99)

        run_world(1, main)


class TestCollectives:
    def test_barrier(self):
        order = []
        lock = threading.Lock()

        def main(comm):
            with lock:
                order.append(("pre", comm.rank))
            comm.barrier()
            with lock:
                order.append(("post", comm.rank))

        run_world(4, main)
        pres = [i for i, (phase, _) in enumerate(order) if phase == "pre"]
        posts = [i for i, (phase, _) in enumerate(order) if phase == "post"]
        assert max(pres) < min(posts)

    def test_bcast(self):
        def main(comm):
            value = comm.bcast("payload" if comm.rank == 0 else None, root=0)
            assert value == "payload"

        run_world(4, main)

    def test_gather_scatter(self):
        def main(comm):
            got = comm.gather(comm.rank * 2, root=0)
            if comm.rank == 0:
                assert got == [0, 2, 4, 6]
                out = comm.scatter([i * 10 for i in range(4)], root=0)
            else:
                assert got is None
                out = comm.scatter(None, root=0)
            assert out == comm.rank * 10

        run_world(4, main)

    def test_allgather_allreduce(self):
        def main(comm):
            assert comm.allgather(comm.rank) == list(range(comm.size))
            assert comm.allreduce(1) == comm.size
            assert comm.allreduce(comm.rank, op=max) == comm.size - 1

        run_world(5, main)


class TestFailures:
    def test_rank_exception_propagates(self):
        def main(comm):
            if comm.rank == 1:
                raise RuntimeError("rank one exploded")
            # other ranks block; abort should wake them
            comm.recv(source=0, tag=77)

        with pytest.raises(RankFailure, match="rank one exploded"):
            run_world(3, main, recv_timeout=30.0)

    def test_deadlock_detection(self):
        def main(comm):
            comm.recv(source=0, tag=1, timeout=0.2)

        with pytest.raises(RankFailure) as exc_info:
            run_world(1, main)
        assert isinstance(exc_info.value.failures[0][1], DeadlockError)

    def test_abort_wakes_barrier(self):
        def main(comm):
            if comm.rank == 0:
                raise ValueError("fail fast")
            comm.barrier()

        with pytest.raises(RankFailure, match="fail fast"):
            run_world(3, main)


class TestStats:
    def test_message_accounting(self):
        world = World(2)

        def sender():
            world.comm(0).send(b"x" * 100, 1)

        def receiver():
            world.comm(1).recv(source=0)

        t1, t2 = threading.Thread(target=sender), threading.Thread(target=receiver)
        t1.start(); t2.start(); t1.join(); t2.join()
        assert world.stats[0].sends == 1
        assert world.stats[0].bytes_sent >= 100
        assert world.stats[1].recvs == 1

    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            World(0)

    def test_results_returned_in_rank_order(self):
        results = run_world(4, lambda comm: comm.rank ** 2)
        assert results == [0, 1, 4, 9]
