"""Bytecode VM differential tests: vm vs ast execution must agree.

The VM (`repro.tcl.vm`) and the compiled-AST interpreter are two
backends for the same language, switched by ``Interp(exec_mode=...)``.
Every script here runs under both and must produce identical results
— including identical error messages *and* identical ``errorInfo``
traces — plus VM-only properties: explicit frame-depth limiting
(deep Tcl recursion works without touching the Python recursion
limit; runaway recursion raises a catchable TclError), inline-cache
invalidation mid-run, and the ``tcl.vm.*`` counters.
"""

from __future__ import annotations

import sys

import pytest
from hypothesis import HealthCheck, given, settings

from repro import swift_run
from repro.tcl.errors import TclBreak, TclContinue, TclError, TclReturn
from repro.tcl.interp import Interp

from .test_swift_fuzz import Undefined, evaluate, exprs, to_swift


def run_mode(script: str, mode: str):
    """('ok', result) or ('err', message, errorinfo-trace)."""
    it = Interp(exec_mode=mode)
    it.echo = False
    try:
        return ("ok", it.eval(script))
    except TclError as e:
        return ("err", e.message, e.trace())
    except TclReturn as r:
        return ("return", r.value, r.code)
    except (TclBreak, TclContinue) as e:
        return (type(e).__name__,)


def assert_same(script: str):
    vm = run_mode(script, "vm")
    ast = run_mode(script, "ast")
    assert vm == ast, "vm/ast divergence on:\n%s\nvm:  %r\nast: %r" % (
        script,
        vm,
        ast,
    )
    return vm


DIFFERENTIAL_SCRIPTS = [
    # arithmetic / expr lowering
    "expr {1 + 2 * 3}",
    "expr {(7 % 3) ** 2 - 4 / 2}",
    "set x 5; expr {$x > 3 && $x < 10 ? \"in\" : \"out\"}",
    "expr {\"abc\" < \"abd\"}",
    "expr {1.5 + 2}",
    "expr {~3 + -2 + !0}",
    # control flow
    "set s 0; for {set i 0} {$i < 10} {incr i} {incr s $i}; set s",
    "set s {}; foreach x {a b c} {append s $x-}; set s",
    "set i 0; while {$i < 5} {incr i; if {$i == 3} break}; set i",
    "set o {}; for {set i 0} {$i<6} {incr i} {if {$i%2} continue;"
    " lappend o $i}; set o",
    "if {1 < 2} then {set r yes} else {set r no}; set r",
    "switch b {a {set r 1} b {set r 2} default {set r 3}}; set r",
    # procs: recursion, defaults, varargs, locals
    "proc fib {n} { if {$n < 2} {return $n};"
    " return [expr {[fib [expr {$n-1}]] + [fib [expr {$n-2}]]}] }\n"
    "fib 12",
    "proc d {a {b B} args} { return \"$a/$b/$args\" }\n"
    "list [d 1] [d 1 2] [d 1 2 3 4]",
    "proc acc {} { set t 0; foreach x {1 2 3} {incr t $x}; return $t }\nacc",
    "proc outer {} { inner }\nproc inner {} { return deep }\nouter",
    # upvar / uplevel / global interplay with slots
    "proc bump {vn} { upvar 1 $vn v; incr v 10 }\n"
    "set n 5; bump n; set n",
    "proc lv {} { uplevel 1 {set leaked 42} }\nlv; set leaked",
    "set g 1\nproc useg {} { global g; incr g; return $g }\nuseg; useg",
    # errors: undefined things, wrong arity, bad incr — messages and
    # errorInfo decoration must match the AST interpreter exactly
    "nosuchcommand a b",
    "set x",
    "proc one {a} {return $a}\none",
    "proc one {a} {return $a}\none x y",
    "set s hello; incr s",
    "proc f {} { error boom }\nproc g {} { f }\ng",
    "proc f {} { nosuch }\nf",
    "set x $undefined_var",
    "proc f {} { expr {$nope + 1} }\nf",
    # catch and return codes
    "catch {error oops} msg; set msg",
    "list [catch {expr {1/0}} m] $m",
    "proc f {} { return -code error fromreturn }\ncatch {f} m; set m",
    "proc f {} { return -code break }\n"
    "set o {}; foreach i {1 2 3} { if {$i == 2} {f}; lappend o $i }; set o",
    # break/continue crossing proc frames is an error at top level
    "break",
    "continue",
    # nested command substitution and word building
    "proc f {x} {return $x}\nset a 3; f a$a[f b]$a",
    "set x ab; set y \"$x[string length $x]\"",
    # namespaces and qualified names
    "namespace eval ns { proc p {} { return inns } }\nns::p",
    "namespace eval ns { variable v 7 }\nset ns::v",
    # redefinition mid-loop (epoch invalidation inside one script)
    "proc f {} { proc f {} { return second }; return first }\n"
    "set o {}; for {set i 0} {$i < 2} {incr i} { lappend o [f] }; set o",
    # string / list commands through the generic call path
    "string toupper [string range abcdef 1 3]",
    "lsort -integer {5 3 10 1}",
    "llength [lrange {a b c d e} 1 3]",
]


@pytest.mark.parametrize(
    "script", DIFFERENTIAL_SCRIPTS, ids=range(len(DIFFERENTIAL_SCRIPTS))
)
def test_vm_matches_ast(script):
    assert_same(script)


# --- property-based: random expression programs through the full stack ---


@given(exprs)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_swift_programs_agree_across_backends(tree):
    try:
        expected = evaluate(tree)
    except Undefined:
        return
    if abs(expected) > 10**15:
        return
    src = (
        'int v0 = parseint("3");\n'
        'int v1 = 0 - parseint("7");\n'
        'int v2 = parseint("12");\n'
        "int result = %s;\n"
        'printf("R=%%i", result);\n' % to_swift(tree)
    )
    expected_lines = ["R=%d" % expected]
    for mode in ("vm", "ast"):
        out = swift_run(src, workers=2, tcl_exec=mode)
        assert out.stdout_lines == expected_lines, (to_swift(tree), mode)


# --- inline-cache invalidation under the VM ------------------------------


@pytest.fixture
def vm_interp():
    it = Interp(exec_mode="vm")
    it.echo = False
    return it


class TestVMCacheInvalidation:
    def test_proc_redefinition_seen_by_vm_caller(self, vm_interp):
        vm_interp.eval("proc f {} { return a }")
        vm_interp.eval("proc g {} { return [f] }")
        assert vm_interp.eval("g") == "a"
        vm_interp.eval("proc f {} { return b }")
        assert vm_interp.eval("g") == "b"

    def test_rename_seen_by_vm_caller(self, vm_interp):
        vm_interp.eval("proc f {} { return old }")
        vm_interp.eval("proc g {} { return [f] }")
        assert vm_interp.eval("g") == "old"
        vm_interp.eval("rename f saved")
        vm_interp.eval("proc f {} { return new }")
        assert vm_interp.eval("g") == "new"
        assert vm_interp.eval("saved") == "old"

    def test_rename_to_empty_deletes_at_call_site(self, vm_interp):
        vm_interp.eval("proc f {} { return x }")
        vm_interp.eval("proc g {} { return [f] }")
        assert vm_interp.eval("g") == "x"
        vm_interp.eval('rename f ""')
        with pytest.raises(TclError, match="invalid command"):
            vm_interp.eval("g")

    def test_redefinition_mid_run_from_inside_vm(self, vm_interp):
        # The redefinition happens *inside* a VM run; the very next
        # iteration's CALL must miss its inline cache and re-resolve.
        vm_interp.eval(
            "proc f {} { proc f {} { return second }; return first }"
        )
        out = vm_interp.eval(
            "set out {}\n"
            "for {set i 0} {$i < 2} {incr i} { lappend out [f] }\n"
            "set out"
        )
        assert out == "first second"

    def test_builtin_guard_invalidation(self, vm_interp):
        # `set` is inlined behind a GUARD; hijacking it must reroute
        # every compiled call site to the new command.
        vm_interp.eval("proc g {} { return [set local 1] }")
        assert vm_interp.eval("g") == "1"
        vm_interp.register("set", lambda it, args: "hijacked")
        assert vm_interp.eval("g") == "hijacked"

    def test_trivial_proc_return_hijack(self, vm_interp):
        # `proc id {x} {return $x}` gets the frameless trivial-call
        # fast path, valid only while `return` is the builtin.
        vm_interp.eval("proc id {x} { return $x }")
        assert vm_interp.eval("id hi") == "hi"
        vm_interp.register("return", lambda it, args: "custom:" + args[0])
        assert vm_interp.eval("id hi") == "custom:hi"

    def test_trivial_proc_wrong_arity_message(self, vm_interp):
        vm_interp.eval("proc id {x} { return $x }")
        assert vm_interp.eval("id a") == "a"  # prime the trivial cache
        with pytest.raises(TclError) as ei:
            vm_interp.eval("id a b")
        assert ei.value.message == 'wrong # args: should be "id x"'


# --- frame-depth limiting (VM replaces the recursion-limit bump) ---------


class TestVMDepth:
    def test_vm_mode_leaves_python_recursion_limit_alone(self):
        before = sys.getrecursionlimit()
        it = Interp(exec_mode="vm")
        assert sys.getrecursionlimit() == before
        it.eval("proc f {} {return ok}")
        assert it.eval("f") == "ok"

    def test_deep_finite_recursion_succeeds(self, vm_interp):
        # Far deeper than Python's default recursion limit allows for
        # the AST interpreter without its setrecursionlimit bump:
        # proc-to-proc calls are VM frames, not Python frames.
        vm_interp.eval(
            "proc count {n} { if {$n == 0} {return done};"
            " return [count [expr {$n - 1}]] }"
        )
        assert vm_interp.eval("count 2500") == "done"

    def test_infinite_recursion_is_catchable(self, vm_interp):
        vm_interp.eval("proc loop {} { loop }")
        with pytest.raises(TclError, match="too many nested evaluations"):
            vm_interp.eval("loop")
        # the interpreter survives and keeps working
        assert vm_interp.eval("expr {1 + 1}") == "2"

    def test_infinite_recursion_caught_by_tcl_catch(self, vm_interp):
        vm_interp.eval("proc loop {} { loop }")
        assert vm_interp.eval("catch {loop}") == "1"
        assert vm_interp.eval("expr {2 + 2}") == "4"


# --- vm_stats counters ---------------------------------------------------


class TestVMStats:
    def test_counters_populated(self, vm_interp):
        # the if/else-of-returns body leaves a dead jump for the
        # peephole pass to delete
        vm_interp.eval(
            "proc f {n} { if {$n > 0} { return [expr {$n + 1}] }"
            " else { return 0 } }"
        )
        vm_interp.eval(
            "for {set i 0} {$i < 20} {incr i} { f $i }"
        )
        s = vm_interp.vm_stats
        assert s.frames > 0
        assert s.cache_hits > 0
        assert s.cache_misses > 0
        assert s.code_misses > 0
        assert s.peephole_ops > 0

    def test_code_cache_hits_on_reeval(self, vm_interp):
        vm_interp.eval("set x 1")
        before = vm_interp.vm_stats.code_hits
        vm_interp.eval("set x 1")
        assert vm_interp.vm_stats.code_hits > before

    def test_single_literal_command_dispatches_directly(self, vm_interp):
        # The rule-action shape skips bytecode: one literal command
        # lowers to a CompiledCommand, but the proc body it invokes
        # still executes on the VM (frames counter moves).
        from repro.tcl.interp import CompiledCommand

        vm_interp.eval("proc g {x} { return $x }")
        assert type(vm_interp.vm_compiled("g 5")) is CompiledCommand
        before = vm_interp.vm_stats.frames
        assert vm_interp.eval("g 5") == "5"
        assert vm_interp.vm_stats.frames > before

    def test_script_builtins_not_direct_dispatched(self, vm_interp):
        # Control builtins evaluate their bodies via the AST-walk
        # internals when called as plain functions, so a top-level
        # `for`/`while`/... must take the full bytecode path.
        from repro.tcl.bytecode import Code

        assert type(
            vm_interp.vm_compiled(
                "for {set i 0} {$i < 3} {incr i} { set x $i }"
            )
        ) is Code

    def test_stats_folded_into_traced_run(self):
        out = swift_run(
            'printf("n=%i", 1 + 2);', workers=2, trace=True
        )
        counters = out.trace.metrics.get("counters", {})
        assert counters.get("tcl.vm.frames", 0) > 0


# --- disassembler --------------------------------------------------------


class TestDisassembler:
    def test_dis_lists_expected_opcodes(self, vm_interp):
        # two commands so the script itself lowers to bytecode (a lone
        # literal command takes the direct-dispatch path instead)
        code = vm_interp.vm_compiled(
            "proc add {a b} { return [expr {$a + $b}] }\nadd 1 2"
        )
        vm_interp.eval("proc add {a b} { return [expr {$a + $b}] }")
        proc = vm_interp.lookup_command("add")
        pcode = vm_interp._vm_proc_code(vm_interp, proc)
        text = pcode.dis()
        assert "LOAD_SLOT" in text
        assert "ADD" in text
        assert "RETURN" in text
        assert "slots: 0=a, 1=b" in text
        assert code.dis()  # script-level dis renders too

    def test_cli_disasm(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "t.tcl"
        src.write_text(
            "proc id {x} { return $x }\nputs [id 7]\n", encoding="utf-8"
        )
        assert main(["disasm", str(src)]) == 0
        out = capsys.readouterr().out
        assert "CALL_LIT" in out or "CALL" in out
        assert "proto: id {x}" in out
