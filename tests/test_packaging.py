"""Static packages and the filesystem metadata model."""

from __future__ import annotations

import os

import pytest

from repro.interlang import register_python, register_r
from repro.packaging import (
    MetadataFS,
    Module,
    PackageError,
    StaticPackage,
    load_loose_modules,
)
from repro.tcl import Interp, TclError


@pytest.fixture()
def pkg():
    p = StaticPackage("myapp")
    p.add("util", "tcl", "package provide util 1.0\nproc util::id {x} { return $x }")
    p.add("helpers", "python", "def helper(x):\n    return x * 2\n")
    p.add("stats", "r", "rhelper <- function(x) x + 100")
    p.add("table.csv", "data", "a,b\n1,2\n")
    return p


class TestStaticPackage:
    def test_add_and_get(self, pkg):
        assert pkg.get("util", "tcl").source.startswith("package provide")
        assert len(pkg) == 4

    def test_duplicate_add_raises(self, pkg):
        with pytest.raises(PackageError):
            pkg.add("util", "tcl", "again")

    def test_unknown_language_raises(self):
        with pytest.raises(PackageError):
            StaticPackage().add("m", "cobol", "src")

    def test_missing_module_raises(self, pkg):
        with pytest.raises(PackageError):
            pkg.get("ghost", "tcl")

    def test_save_load_round_trip(self, pkg, tmp_path):
        path = str(tmp_path / "app.pkg")
        pkg.save(path)
        loaded = StaticPackage.load(path)
        assert loaded.name == "myapp"
        assert len(loaded) == 4
        assert loaded.get("helpers", "python").source == pkg.get("helpers", "python").source

    def test_load_counts_one_fs_access(self, pkg, tmp_path):
        path = str(tmp_path / "app.pkg")
        pkg.save(path)
        fs = MetadataFS(metadata_latency=2e-3)
        StaticPackage.load(path, fs=fs)
        assert fs.stats.opens == 1
        assert fs.stats.simulated_time >= 2e-3

    def test_add_many(self):
        p = StaticPackage()
        p.add_many([Module("a", "tcl", "x"), Module("b", "r", "y")])
        assert len(p) == 2


class TestInstallation:
    def test_tcl_package_require_from_bundle(self, pkg):
        it = Interp()
        it.echo = False
        pkg.install_into(it)
        assert it.eval("package require util") == "1.0"
        assert it.eval("util::id hello") == "hello"

    def test_source_from_bundle(self, pkg):
        it = Interp()
        it.echo = False
        pkg.install_into(it)
        it.eval("source util")
        assert it.eval("util::id 5") == "5"

    def test_source_missing_module_raises(self, pkg):
        it = Interp()
        it.echo = False
        pkg.install_into(it)
        with pytest.raises(Exception):
            it.eval("source nothere")

    def test_python_require_from_bundle(self, pkg):
        it = Interp()
        it.echo = False
        register_python(it)
        pkg.install_into(it)
        it.eval("python::require helpers")
        assert it.eval("python::eval {} {helper(21)}") == "42"

    def test_r_require_from_bundle(self, pkg):
        it = Interp()
        it.echo = False
        register_r(it)
        pkg.install_into(it)
        it.eval("r::require stats")
        assert it.eval("r::eval {} {rhelper(1)}") == "101"


class TestMetadataFS:
    def test_loose_loading_costs_per_module(self, tmp_path):
        paths = []
        for i in range(15):
            p = tmp_path / ("m%d.tcl" % i)
            p.write_text("content %d" % i)
            paths.append(str(p))
        fs = MetadataFS(metadata_latency=1e-3)
        loaded = load_loose_modules(fs, paths)
        assert len(loaded) == 15
        assert fs.stats.opens == 15
        assert fs.stats.simulated_time >= 15e-3

    def test_static_vs_loose_cost_ratio(self, pkg, tmp_path):
        """The headline claim: static packages amortize metadata cost."""
        n = 40
        loose_dir = tmp_path / "loose"
        loose_dir.mkdir()
        paths = []
        big = StaticPackage("big")
        for i in range(n):
            src = "proc m%d {} { return %d }" % (i, i)
            (loose_dir / ("m%d.tcl" % i)).write_text(src)
            paths.append(str(loose_dir / ("m%d.tcl" % i)))
            big.add("m%d" % i, "tcl", src)
        pkg_path = str(tmp_path / "big.pkg")
        big.save(pkg_path)

        fs_loose = MetadataFS(metadata_latency=1e-3)
        load_loose_modules(fs_loose, paths)
        fs_static = MetadataFS(metadata_latency=1e-3)
        StaticPackage.load(pkg_path, fs=fs_static)
        assert fs_loose.stats.simulated_time > 10 * fs_static.stats.simulated_time

    def test_stat_and_reset(self, tmp_path):
        fs = MetadataFS()
        assert fs.stat(str(tmp_path)) is True
        assert fs.stat(str(tmp_path / "missing")) is False
        assert fs.stats.stats == 2
        fs.reset()
        assert fs.stats.stats == 0

    def test_read_bandwidth_accounted(self, tmp_path):
        p = tmp_path / "big.bin"
        p.write_bytes(b"x" * 1_000_000)
        fs = MetadataFS(metadata_latency=0.0, read_bandwidth=1e6)
        fs.open_read_bytes(str(p))
        assert fs.stats.simulated_time == pytest.approx(1.0)
        assert fs.stats.bytes_read == 1_000_000
